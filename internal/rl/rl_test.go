package rl

import (
	"math/rand"
	"testing"

	"oarsmt/internal/layout"
	"oarsmt/internal/mcts"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
)

func tinySelector(t *testing.T, seed int64) *selector.Selector {
	t.Helper()
	s, err := selector.NewRandom(rand.New(rand.NewSource(seed)),
		nn.UNetConfig{InChannels: selector.NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func tinyConfig() Config {
	return Config{
		Sizes:            []layout.TrainingSize{{HV: 6, M: 2}},
		LayoutsPerSize:   2,
		MinPins:          3,
		MaxPins:          5,
		CurriculumStages: 2,
		MCTS:             mcts.Config{Iterations: 8, UseCritic: true, CPuct: 1, MaxNoChange: 3},
		Augment:          false,
		BatchSize:        4,
		EpochsPerStage:   2,
		LR:               1e-3,
		Seed:             7,
	}
}

func sampleFor(t *testing.T, seed int64) mcts.Sample {
	t.Helper()
	sel := tinySelector(t, seed)
	in, err := layout.Random(rand.New(rand.NewSource(seed)), layout.RandomSpec{
		H: 6, V: 6, MinM: 2, MaxM: 2, MinPins: 4, MaxPins: 4, MinObstacles: 3, MaxObstacles: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mcts.Search(sel, in, mcts.Config{Iterations: 8, UseCritic: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Sample
}

func TestAugmentSampleProduces16Variants(t *testing.T) {
	s := sampleFor(t, 1)
	augs := AugmentSample(s)
	if len(augs) != 16 {
		t.Fatalf("augmented variants = %d, want 16", len(augs))
	}
	g := s.Instance.Graph
	for i, a := range augs {
		ng := a.Instance.Graph
		if ng.NumVertices() != g.NumVertices() {
			t.Fatalf("variant %d changed vertex count", i)
		}
		if len(a.Label) != len(s.Label) {
			t.Fatalf("variant %d label length %d", i, len(a.Label))
		}
		if len(a.Instance.Pins) != len(s.Instance.Pins) {
			t.Fatalf("variant %d pin count changed", i)
		}
		// Label mass is preserved by any permutation.
		var sumA, sumS float64
		for j := range a.Label {
			sumA += a.Label[j]
		}
		for j := range s.Label {
			sumS += s.Label[j]
		}
		if diff := sumA - sumS; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("variant %d label mass %v != %v", i, sumA, sumS)
		}
		// Blocked count preserved; pins stay unblocked.
		if ng.NumBlocked() != g.NumBlocked() {
			t.Fatalf("variant %d blocked count changed", i)
		}
		for _, p := range a.Instance.Pins {
			if ng.Blocked(p) {
				t.Fatalf("variant %d pin landed on obstacle", i)
			}
		}
	}
	// First variant is the identity.
	for j := range s.Label {
		if augs[0].Label[j] != s.Label[j] {
			t.Fatal("identity variant label changed")
		}
	}
}

func TestCurriculumPinSchedule(t *testing.T) {
	sel := tinySelector(t, 2)
	cfg := tinyConfig()
	cfg.CurriculumStages = 4
	cfg.MinPins, cfg.MaxPins = 3, 6
	tr := NewTrainer(sel, cfg)
	wantPins := []int{3, 4, 5, 6}
	for i, want := range wantPins {
		lo, hi, critic := tr.stagePins()
		if lo != want || hi != want {
			t.Errorf("curriculum stage %d pins = [%d,%d], want fixed %d", i+1, lo, hi, want)
		}
		if critic {
			t.Errorf("curriculum stage %d should disable the critic", i+1)
		}
		tr.stage++
	}
	lo, hi, critic := tr.stagePins()
	if lo != 3 || hi != 6 || !critic {
		t.Errorf("post-curriculum = [%d,%d] critic=%v, want [3,6] true", lo, hi, critic)
	}
}

func TestRunStageUpdatesSelector(t *testing.T) {
	sel := tinySelector(t, 3)
	before := sel.Net.Params()[0].W.Clone()
	tr := NewTrainer(sel, tinyConfig())
	stats, err := tr.RunStage()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stage != 1 || tr.Stage() != 1 {
		t.Errorf("stage counter = %d / %d", stats.Stage, tr.Stage())
	}
	if stats.Samples != 2 {
		t.Errorf("samples = %d, want 2", stats.Samples)
	}
	if stats.TrainedSamples != stats.Samples {
		t.Errorf("without augmentation trained = %d, want %d", stats.TrainedSamples, stats.Samples)
	}
	if stats.Episodes != 2 || stats.MCTSIterations == 0 {
		t.Errorf("episodes = %d iterations = %d", stats.Episodes, stats.MCTSIterations)
	}
	changed := false
	after := sel.Net.Params()[0].W
	for i := range after.Data {
		if after.Data[i] != before.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("RunStage did not update the selector weights")
	}
}

func TestRunStageWithAugmentation(t *testing.T) {
	sel := tinySelector(t, 4)
	cfg := tinyConfig()
	cfg.Augment = true
	cfg.LayoutsPerSize = 1
	tr := NewTrainer(sel, cfg)
	stats, err := tr.RunStage()
	if err != nil {
		t.Fatal(err)
	}
	if stats.TrainedSamples != 16*stats.Samples {
		t.Errorf("trained = %d, want 16x%d", stats.TrainedSamples, stats.Samples)
	}
}

func TestFitDecreasesLoss(t *testing.T) {
	sel := tinySelector(t, 5)
	cfg := tinyConfig()
	cfg.EpochsPerStage = 1
	cfg.LR = 5e-3
	tr := NewTrainer(sel, cfg)
	samples := []mcts.Sample{sampleFor(t, 6), sampleFor(t, 7)}
	first, err := tr.Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 15; i++ {
		last, err = tr.Fit(samples)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestFitRejectsEmpty(t *testing.T) {
	tr := NewTrainer(tinySelector(t, 8), tinyConfig())
	if _, err := tr.Fit(nil); err == nil {
		t.Error("empty sample set should fail")
	}
}

func TestMixedSizeGrouping(t *testing.T) {
	// Samples of two different sizes must both train without shape errors.
	sel := tinySelector(t, 9)
	cfg := tinyConfig()
	cfg.Sizes = []layout.TrainingSize{{HV: 6, M: 2}, {HV: 8, M: 2}}
	cfg.LayoutsPerSize = 1
	tr := NewTrainer(sel, cfg)
	stats, err := tr.RunStage()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples != 2 {
		t.Errorf("samples = %d, want one per size", stats.Samples)
	}
}

func TestTrainingReproducible(t *testing.T) {
	run := func() float64 {
		sel := tinySelector(t, 10)
		tr := NewTrainer(sel, tinyConfig())
		stats, err := tr.RunStage()
		if err != nil {
			t.Fatal(err)
		}
		return stats.MeanLoss
	}
	if a, b := run(), run(); a != b {
		t.Errorf("training not reproducible: %v vs %v", a, b)
	}
}
