package rl

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"oarsmt/internal/errs"
	"oarsmt/internal/layout"
	"oarsmt/internal/mcts"
	"oarsmt/internal/nn"
	"oarsmt/internal/obs"
	"oarsmt/internal/parallel"
	"oarsmt/internal/selector"
	"oarsmt/internal/tensor"
)

// Config parameterises the training pipeline. The paper's values are in
// the comments; the defaults are CPU-scale.
type Config struct {
	// Sizes are the layout sizes of the mixed-size schedule (paper: the 12
	// combinations of layout.TrainingSizes).
	Sizes []layout.TrainingSize
	// LayoutsPerSize is the number of random layouts per size per stage
	// (paper: 1000).
	LayoutsPerSize int
	// MinPins and MaxPins bound the random pin counts after the curriculum
	// phase (paper: 3 and 6).
	MinPins, MaxPins int
	// CurriculumStages is the number of leading stages that fix the pin
	// count progressively from MinPins to MaxPins and disable the critic
	// (paper: 4).
	CurriculumStages int
	// MCTS is the per-episode search configuration; UseCritic is forced
	// off during curriculum stages.
	MCTS mcts.Config
	// Augment enables the 16-fold data augmentation (paper: on).
	Augment bool
	// BatchSize is the number of same-size samples per gradient step
	// (paper: 256).
	BatchSize int
	// EpochsPerStage repeats the generated samples (paper: 4).
	EpochsPerStage int
	// LR is the Adam learning rate.
	LR float64
	// Seed makes training reproducible.
	Seed int64
}

// DefaultConfig returns a CPU-scale configuration preserving the paper's
// schedule structure.
func DefaultConfig() Config {
	return Config{
		Sizes:            []layout.TrainingSize{{HV: 8, M: 2}, {HV: 10, M: 2}},
		LayoutsPerSize:   4,
		MinPins:          3,
		MaxPins:          6,
		CurriculumStages: 4,
		MCTS:             mcts.Config{Iterations: 24, UseCritic: true, CPuct: 1, MaxNoChange: 3},
		Augment:          true,
		BatchSize:        32,
		EpochsPerStage:   4,
		LR:               3e-3,
		Seed:             1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if len(c.Sizes) == 0 {
		c.Sizes = d.Sizes
	}
	if c.LayoutsPerSize <= 0 {
		c.LayoutsPerSize = d.LayoutsPerSize
	}
	if c.MinPins < 3 {
		c.MinPins = d.MinPins
	}
	if c.MaxPins < c.MinPins {
		c.MaxPins = c.MinPins
	}
	if c.BatchSize <= 0 {
		c.BatchSize = d.BatchSize
	}
	if c.EpochsPerStage <= 0 {
		c.EpochsPerStage = d.EpochsPerStage
	}
	if c.LR <= 0 {
		c.LR = d.LR
	}
	return c
}

// StageStats summarises one training stage.
type StageStats struct {
	Stage          int
	Samples        int // before augmentation
	TrainedSamples int // after augmentation
	Episodes       int
	MCTSIterations int
	MeanLoss       float64
	MeanRootCost   float64
	MeanFinalCost  float64
	// EpochLosses is the mean BCE loss of each training epoch of the
	// stage, in epoch order — the stage's loss curve.
	EpochLosses []float64
}

// Trainer drives the selector-evolution loop of Fig 8. Each RunStage call
// generates samples with combinatorial MCTS under the *current* selector
// (so the actor and critic are upgraded between stages automatically) and
// fits the selector to the new samples with BCE loss.
type Trainer struct {
	Cfg      Config
	Selector *selector.Selector

	rng   *rand.Rand
	src   *detSource // rng's source; its one-word state is checkpointable
	opt   *nn.Adam
	stage int

	ckptDir  string // "" disables per-stage auto-checkpointing
	ckptKeep int
}

// NewTrainer creates a trainer over the selector.
func NewTrainer(sel *selector.Selector, cfg Config) *Trainer {
	cfg = cfg.withDefaults()
	src := newDetSource(cfg.Seed)
	return &Trainer{
		Cfg:      cfg,
		Selector: sel,
		rng:      rand.New(src),
		src:      src,
		opt:      nn.NewAdam(sel.Net.Params(), cfg.LR),
	}
}

// Stage returns the number of completed stages.
func (t *Trainer) Stage() int { return t.stage }

// stagePins returns the pin range of the next stage, implementing the
// curriculum of §3.6: stages 1..CurriculumStages use a fixed pin count
// stepping from MinPins to MaxPins, later stages draw uniformly.
func (t *Trainer) stagePins() (lo, hi int, useCritic bool) {
	s := t.stage + 1 // 1-based stage about to run
	if t.Cfg.CurriculumStages > 0 && s <= t.Cfg.CurriculumStages {
		span := t.Cfg.MaxPins - t.Cfg.MinPins
		step := 0
		if t.Cfg.CurriculumStages > 1 {
			step = (s - 1) * span / (t.Cfg.CurriculumStages - 1)
		}
		p := t.Cfg.MinPins + step
		return p, p, false
	}
	return t.Cfg.MinPins, t.Cfg.MaxPins, true
}

// GenerateSamples produces the training samples of one stage without
// updating the selector; exported for the sample-generation benchmarks.
//
// The independent MCTS episodes run across the parallel worker pool, each
// worker searching on a private clone of the current selector. Layout
// generation stays serial so the trainer's RNG is consumed in a fixed
// order, and the episode results are folded in layout order, so samples
// and statistics are identical at every worker count.
func (t *Trainer) GenerateSamples() ([]mcts.Sample, StageStats, error) {
	return t.GenerateSamplesCtx(context.Background())
}

// GenerateSamplesCtx is GenerateSamples under a cancellation context; the
// context also carries the observability sinks of the episode spans.
func (t *Trainer) GenerateSamplesCtx(ctx context.Context) ([]mcts.Sample, StageStats, error) {
	ctx, end := obs.Span(ctx, "rl.generate")
	defer end()
	lo, hi, useCritic := t.stagePins()
	cfg := t.Cfg.MCTS
	cfg.UseCritic = cfg.UseCritic && useCritic

	stats := StageStats{Stage: t.stage + 1}
	var ins []*layout.Instance
	for _, size := range t.Cfg.Sizes {
		spec := layout.TrainingSpec(size, lo, hi)
		for i := 0; i < t.Cfg.LayoutsPerSize; i++ {
			in, err := layout.Random(t.rng, spec)
			if err != nil {
				return nil, stats, fmt.Errorf("rl: stage %d: %w", t.stage+1, err)
			}
			ins = append(ins, in)
		}
	}

	results := make([]*mcts.Result, len(ins))
	if w := parallel.Workers(); w > 1 && len(ins) > 1 {
		errs := make([]error, w)
		parallel.For(len(ins), func(shard, lo, hi int) {
			priv, err := t.Selector.Clone()
			if err != nil {
				errs[shard] = err
				return
			}
			for i := lo; i < hi; i++ {
				res, err := mcts.SearchCtx(ctx, priv, ins[i], cfg)
				if err != nil {
					errs[shard] = err
					return
				}
				results[i] = res
			}
		})
		for _, err := range errs {
			if err != nil {
				return nil, stats, fmt.Errorf("rl: stage %d: %w", t.stage+1, err)
			}
		}
	} else {
		for i, in := range ins {
			res, err := mcts.SearchCtx(ctx, t.Selector, in, cfg)
			if err != nil {
				return nil, stats, fmt.Errorf("rl: stage %d: %w", t.stage+1, err)
			}
			results[i] = res
		}
	}

	var samples []mcts.Sample
	for _, res := range results {
		samples = append(samples, res.Sample)
		stats.Episodes++
		stats.MCTSIterations += res.Iterations
		stats.MeanRootCost += res.RootCost
		stats.MeanFinalCost += res.FinalCost
	}
	if stats.Episodes > 0 {
		stats.MeanRootCost /= float64(stats.Episodes)
		stats.MeanFinalCost /= float64(stats.Episodes)
	}
	stats.Samples = len(samples)
	m := obs.MetricsFrom(ctx)
	m.Counter("rl.episodes").Add(int64(stats.Episodes))
	m.Counter("rl.samples").Add(int64(stats.Samples))
	return samples, stats, nil
}

// RunStage performs one full stage: sample generation, augmentation, and
// EpochsPerStage epochs of same-size mini-batch training.
func (t *Trainer) RunStage() (StageStats, error) {
	return t.RunStageCtx(context.Background())
}

// RunStageCtx is RunStage under a cancellation context carrying the
// observability sinks: the stage emits rl.stage / rl.generate /
// rl.augment / rl.fit spans (with one rl.epoch span per training epoch)
// and updates the rl.* metrics.
func (t *Trainer) RunStageCtx(ctx context.Context) (StageStats, error) {
	ctx, end := obs.Span(ctx, "rl.stage")
	defer end()
	samples, stats, err := t.GenerateSamplesCtx(ctx)
	if err != nil {
		return stats, err
	}

	if t.Cfg.Augment {
		_, endAug := obs.Span(ctx, "rl.augment")
		var augmented []mcts.Sample
		for _, s := range samples {
			augmented = append(augmented, AugmentSample(s)...)
		}
		samples = augmented
		endAug()
	}
	stats.TrainedSamples = len(samples)

	loss, epochLosses, err := t.fit(ctx, samples)
	if err != nil {
		return stats, err
	}
	stats.MeanLoss = loss
	stats.EpochLosses = epochLosses
	t.stage++
	stats.Stage = t.stage

	m := obs.MetricsFrom(ctx)
	m.Counter("rl.stages").Inc()
	m.FloatGauge("rl.loss").Set(loss)

	if t.ckptDir != "" {
		if _, err := t.SaveCheckpoint(); err != nil {
			// The stage itself succeeded; surface the checkpoint failure so
			// the operator knows crash-safety is gone, rather than
			// discovering it after the crash.
			return stats, err
		}
		m.Counter("rl.checkpoints").Inc()
	}
	return stats, nil
}

// Fit trains the selector on the samples for EpochsPerStage epochs with
// same-size batches (Fig 9) and returns the mean BCE loss of the final
// epoch.
func (t *Trainer) Fit(samples []mcts.Sample) (float64, error) {
	loss, _, err := t.fit(context.Background(), samples)
	return loss, err
}

// fit is Fit with observability: an rl.fit span wrapping the epoch loop,
// one rl.epoch span per epoch, and the per-epoch loss curve returned for
// StageStats.
func (t *Trainer) fit(ctx context.Context, samples []mcts.Sample) (float64, []float64, error) {
	ctx, end := obs.Span(ctx, "rl.fit")
	defer end()
	if len(samples) == 0 {
		return 0, nil, fmt.Errorf("%w: rl: no samples to fit", errs.ErrInvalidConfig)
	}
	// Group by layout dimensions so every batch has a single size.
	groups := map[[3]int][]int{}
	for i, s := range samples {
		g := s.Instance.Graph
		key := [3]int{g.H, g.V, g.M}
		groups[key] = append(groups[key], i)
	}
	keys := make([][3]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })

	var lastEpochLoss float64
	epochLosses := make([]float64, 0, t.Cfg.EpochsPerStage)
	epochHist := obs.MetricsFrom(ctx).Histogram("rl.epoch_latency")
	for epoch := 0; epoch < t.Cfg.EpochsPerStage; epoch++ {
		epochTimer := obs.StartTimer()
		totalLoss, nBatches := 0.0, 0
		for _, key := range keys {
			idxs := append([]int(nil), groups[key]...)
			t.rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
			for start := 0; start < len(idxs); start += t.Cfg.BatchSize {
				end := start + t.Cfg.BatchSize
				if end > len(idxs) {
					end = len(idxs)
				}
				batchLoss := 0.0
				for _, si := range idxs[start:end] {
					s := samples[si]
					g := s.Instance.Graph
					logits := t.Selector.Net.Forward(selector.Encode(g, s.Instance.Pins))
					target := tensor.FromSlice(s.Label, g.H, g.V, g.M)
					loss, grad := nn.BCEWithLogits(logits, target)
					// Scale so the batch gradient is the mean over samples.
					grad.Scale(1 / float64(end-start))
					t.Selector.Net.Backward(grad)
					batchLoss += loss
				}
				t.opt.Step()
				totalLoss += batchLoss / float64(end-start)
				nBatches++
			}
		}
		if nBatches > 0 {
			lastEpochLoss = totalLoss / float64(nBatches)
		}
		epochLosses = append(epochLosses, lastEpochLoss)
		d := epochTimer.Elapsed()
		epochHist.Observe(d)
		obs.ObserveSpan(ctx, "rl.epoch", d)
	}
	return lastEpochLoss, epochLosses, nil
}

func lessKey(a, b [3]int) bool {
	for i := 0; i < 3; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
