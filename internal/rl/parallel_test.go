package rl

import (
	"reflect"
	"testing"

	"oarsmt/internal/parallel"
)

// TestGenerateSamplesBitEqualAcrossWorkerCounts verifies that the parallel
// episode loop produces the same samples and stage statistics as the serial
// one: layouts are generated serially (fixed RNG order), each worker
// searches on a bit-exact selector clone, and results fold in layout order.
func TestGenerateSamplesBitEqualAcrossWorkerCounts(t *testing.T) {
	prevW := parallel.Workers()
	defer parallel.SetWorkers(prevW)

	cfg := tinyConfig()
	cfg.LayoutsPerSize = 3

	run := func(workers int) ([]float64, StageStats) {
		parallel.SetWorkers(workers)
		tr := NewTrainer(tinySelector(t, 21), cfg)
		samples, stats, err := tr.GenerateSamples()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var labels []float64
		for _, s := range samples {
			labels = append(labels, s.Label...)
		}
		return labels, stats
	}

	refLabels, refStats := run(1)
	for _, w := range []int{2, 3} {
		labels, stats := run(w)
		if !reflect.DeepEqual(stats, refStats) {
			t.Fatalf("workers=%d: stats %+v != serial %+v", w, stats, refStats)
		}
		if len(labels) != len(refLabels) {
			t.Fatalf("workers=%d: %d label values != serial %d", w, len(labels), len(refLabels))
		}
		for i := range refLabels {
			if labels[i] != refLabels[i] {
				t.Fatalf("workers=%d: label value %d differs", w, i)
			}
		}
	}
}
