package rl

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"oarsmt/internal/ckpt"
	"oarsmt/internal/fault"
)

// modelHash fingerprints a trainer's selector weights bit-exactly, in
// parameter order (the gob form is not byte-stable: it serialises the
// parameter map in randomized iteration order).
func modelHash(t *testing.T, tr *Trainer) [sha256.Size]byte {
	t.Helper()
	h := sha256.New()
	for _, p := range tr.Selector.Net.Params() {
		h.Write([]byte(p.Name))
		for _, w := range p.W.Data {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(w))
			h.Write(b[:])
		}
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func runStages(t *testing.T, tr *Trainer, n int) []StageStats {
	t.Helper()
	out := make([]StageStats, 0, n)
	for i := 0; i < n; i++ {
		st, err := tr.RunStage()
		if err != nil {
			t.Fatalf("stage %d: %v", i+1, err)
		}
		out = append(out, st)
	}
	return out
}

// TestCrashAndResumeBitIdentical is the tentpole acceptance test: a run
// killed after stage 2 and resumed from disk must finish stage 3 with
// stage statistics and final model weights bit-identical to a run that was
// never interrupted.
func TestCrashAndResumeBitIdentical(t *testing.T) {
	cfg := tinyConfig()

	// Reference: 3 uninterrupted stages.
	ref := NewTrainer(tinySelector(t, 10), cfg)
	refStats := runStages(t, ref, 3)
	refHash := modelHash(t, ref)

	// Crash run: checkpoint every stage, kill mid-stage-3. The "kill" is
	// SIGKILL-equivalent for state purposes: the trainer object is
	// abandoned and everything after this line comes from disk only.
	dir := t.TempDir()
	crash := NewTrainer(tinySelector(t, 10), cfg)
	crash.EnableCheckpoints(dir, 3)
	crashStats := runStages(t, crash, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // interrupt stage 3 before it completes
	if _, err := crash.RunStageCtx(ctx); err == nil {
		t.Fatal("cancelled stage 3 reported success")
	}
	crash = nil

	// Resume from disk and finish stage 3.
	res, err := ResumeTrainer(dir, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage() != 2 {
		t.Fatalf("resumed at stage %d, want 2", res.Stage())
	}
	st3, err := res.RunStage()
	if err != nil {
		t.Fatal(err)
	}
	gotStats := append(crashStats, st3)

	if len(gotStats) != len(refStats) {
		t.Fatalf("stage count %d, want %d", len(gotStats), len(refStats))
	}
	for i := range refStats {
		if !reflect.DeepEqual(gotStats[i], refStats[i]) {
			t.Errorf("stage %d stats diverge after resume:\n got %+v\nwant %+v", i+1, gotStats[i], refStats[i])
		}
	}
	if modelHash(t, res) != refHash {
		t.Error("final model hash differs between resumed and uninterrupted runs")
	}
}

// TestResumeFallsBackPastTruncatedCheckpoint covers the torn-write
// acceptance path: the newest checkpoint is truncated on disk, Latest
// detects it and resume continues from the previous stage — and the rerun
// of that stage still converges to the uninterrupted run bit for bit.
func TestResumeFallsBackPastTruncatedCheckpoint(t *testing.T) {
	cfg := tinyConfig()

	ref := NewTrainer(tinySelector(t, 11), cfg)
	runStages(t, ref, 3)
	refHash := modelHash(t, ref)

	dir := t.TempDir()
	tr := NewTrainer(tinySelector(t, 11), cfg)
	tr.EnableCheckpoints(dir, 0)
	runStages(t, tr, 3)

	// Truncate the stage-3 checkpoint as a torn write would.
	path := filepath.Join(dir, ckpt.Name(3))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := ResumeTrainer(dir, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage() != 2 {
		t.Fatalf("resumed at stage %d, want fallback to 2", res.Stage())
	}
	if _, err := res.RunStage(); err != nil {
		t.Fatal(err)
	}
	if modelHash(t, res) != refHash {
		t.Error("model hash after truncated-checkpoint fallback differs from reference")
	}
}

func TestResumeRejectsConfigMismatch(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	tr := NewTrainer(tinySelector(t, 12), cfg)
	tr.EnableCheckpoints(dir, 0)
	runStages(t, tr, 1)

	other := cfg
	other.LR = cfg.LR * 2
	if _, err := ResumeTrainer(dir, other, 0); err == nil {
		t.Error("resume accepted a checkpoint from a different configuration")
	}
	if _, err := ResumeTrainer(t.TempDir(), cfg, 0); !errors.Is(err, ckpt.ErrNotFound) {
		t.Errorf("resume from empty dir: %v, want ckpt.ErrNotFound", err)
	}
}

// TestCheckpointWriteFaultSurfaces ensures a failing checkpoint write is
// reported by the stage rather than silently dropping crash-safety.
func TestCheckpointWriteFaultSurfaces(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	cfg := tinyConfig()
	dir := t.TempDir()
	tr := NewTrainer(tinySelector(t, 13), cfg)
	tr.EnableCheckpoints(dir, 0)

	fault.Set("ckpt.write", fault.Options{Mode: fault.Error, Times: 1})
	if _, err := tr.RunStage(); err == nil || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("stage with failing checkpoint write returned %v, want injected error", err)
	}
	// The next stage checkpoints fine and retention applies.
	if _, err := tr.RunStage(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ckpt.Latest(dir); err != nil {
		t.Fatalf("no checkpoint after recovery: %v", err)
	}
}

func TestDetSourceKnownValuesAndInterface(t *testing.T) {
	// splitmix64 reference values for seed 0 (Vigna's implementation).
	s := newDetSource(0)
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("splitmix64(seed 0) draw %d = %#x, want %#x", i, got, w)
		}
	}
	if v := newDetSource(1).Int63(); v < 0 {
		t.Errorf("Int63 returned negative %d", v)
	}
}
