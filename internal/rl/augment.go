// Package rl implements the paper's training pipeline for the
// combinatorial-MCTS Steiner-point selector (§3.5–3.6): per-stage sample
// generation on random layouts, 16-fold rotation/reflection data
// augmentation, mixed-size training with same-size batches (Fig 9), the
// 3-to-6-pin curriculum of the first stages, and the stage loop that
// upgrades the actor and critic after every selector update (Fig 8).
package rl

import (
	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/mcts"
)

// AugmentSample returns the sample's 16 augmented variants (including the
// identity), transforming the layout graph, the pin positions and the
// label array consistently (paper §3.6: rotations by 0/90/180/270 degrees
// and reflections across the y and z axes).
func AugmentSample(s mcts.Sample) []mcts.Sample {
	g := s.Instance.Graph
	out := make([]mcts.Sample, 0, 16)
	for _, aug := range grid.AllAugmentations() {
		ng := aug.Apply(g)
		pins := make([]grid.VertexID, len(s.Instance.Pins))
		for i, p := range s.Instance.Pins {
			pins[i] = ng.IndexOf(aug.ApplyCoord(g.H, g.V, g.M, g.CoordOf(p)))
		}
		out = append(out, mcts.Sample{
			Instance: &layout.Instance{
				Name:  s.Instance.Name,
				Graph: ng,
				Pins:  pins,
			},
			Label: aug.ApplyArray(g.H, g.V, g.M, s.Label),
		})
	}
	return out
}
