package rl

import (
	"testing"

	"oarsmt/internal/layout"
	"oarsmt/internal/mcts"
)

// TestConfigFingerprintPinned pins the canonical fingerprint string
// byte-for-byte for the defaulted DefaultConfig. If this test fails you
// changed the encoding (or Config itself): bump the version prefix and
// update the expectation, knowing that every existing checkpoint stops
// resuming under the new string — which is the safe direction, never the
// silent one.
func TestConfigFingerprintPinned(t *testing.T) {
	got := configFingerprint(DefaultConfig().withDefaults())
	const want = "rl-config-v2;sizes=8x2,10x2;layoutsPerSize=4;minPins=3;maxPins=6;curriculumStages=4;" +
		"mcts={iterations=24,scaleIterations=false,useCritic=true,cPuct=1,maxNoChange=3};" +
		"augment=true;batchSize=32;epochsPerStage=4;lr=0.003;seed=1"
	if got != want {
		t.Fatalf("fingerprint drifted:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestConfigFingerprintSeparatesFields: every field participates, and
// near-miss values (the float cases %+v would have rendered ambiguously)
// stay distinct.
func TestConfigFingerprintSeparatesFields(t *testing.T) {
	base := DefaultConfig().withDefaults()
	mutations := map[string]func(*Config){
		"sizes":            func(c *Config) { c.Sizes = []layout.TrainingSize{{HV: 8, M: 2}} },
		"layoutsPerSize":   func(c *Config) { c.LayoutsPerSize++ },
		"minPins":          func(c *Config) { c.MinPins++ },
		"maxPins":          func(c *Config) { c.MaxPins++ },
		"curriculumStages": func(c *Config) { c.CurriculumStages++ },
		"mcts.iterations":  func(c *Config) { c.MCTS.Iterations++ },
		"mcts.scaleIters":  func(c *Config) { c.MCTS.ScaleIterations = true },
		"mcts.useCritic":   func(c *Config) { c.MCTS.UseCritic = false },
		"mcts.cPuct":       func(c *Config) { c.MCTS.CPuct += 1e-12 },
		"mcts.maxNoChange": func(c *Config) { c.MCTS.MaxNoChange++ },
		"augment":          func(c *Config) { c.Augment = false },
		"batchSize":        func(c *Config) { c.BatchSize++ },
		"epochsPerStage":   func(c *Config) { c.EpochsPerStage++ },
		"lr":               func(c *Config) { c.LR += 1e-15 },
		"seed":             func(c *Config) { c.Seed++ },
	}
	// Deterministic iteration is irrelevant here: each case is independent.
	for name, mutate := range mutations {
		cfg := base
		cfg.Sizes = append([]layout.TrainingSize(nil), base.Sizes...)
		mutate(&cfg)
		if configFingerprint(cfg) == configFingerprint(base) {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}
	// Sanity: the MCTS sub-config really is part of base (guards against a
	// future refactor that drops the nested struct from the encoding).
	if base.MCTS == (mcts.Config{}) {
		t.Fatal("defaulted config has a zero MCTS sub-config")
	}
}
