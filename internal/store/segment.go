package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"oarsmt/internal/ckpt"
	"oarsmt/internal/fault"
	"oarsmt/internal/grid"
)

// Key is the content address of a stored route: the augmentation-normalized
// canonical layout hash computed by internal/serve. Two layouts share a key
// exactly when one is an augmentation of the other.
type Key [32]byte

// Fingerprint identifies the selector model a record was routed with: the
// SHA-256 over the network's weights in canonical Params() order
// (selector.Fingerprint). A store opened under a different fingerprint
// drops every stored record, so a retrained model can never serve a stale
// route.
type Fingerprint [32]byte

// Record is one routed layout in its canonical orientation: the same
// coordinate-space shape internal/serve caches in memory, so an entry can
// be replayed into any of the 16 symmetric request orientations. Records
// handed out by Get are shared and must be treated as read-only.
type Record struct {
	Key     Key
	H, V, M int        // canonical grid dimensions
	Root    grid.Coord // tree root, canonical space
	Edges   [][2]grid.Coord
	Steiner []grid.Coord
	UsedSteiner bool
	Proposed    int // Steiner points the selector proposed
	Cost        float64
}

// Segment payload layout (wrapped in an internal/ckpt frame, which carries
// the magic, version, length and SHA-256 trailer):
//
//	segMagic    "OARSMTSG"       (8 bytes)
//	segVersion  uint32 LE        (currently 1)
//	fingerprint [32]byte         (selector weight hash of every record)
//	count       uint64 LE        (record count)
//	records     count x record
//
// One record, all integers little-endian:
//
//	key       [32]byte
//	h, v, m   uint32
//	root      3 x int32
//	cost      float64 bits
//	flags     uint8 (bit 0: usedSteiner)
//	proposed  uint32
//	nEdges    uint32, then nEdges x 6 x int32
//	nSteiner  uint32, then nSteiner x 3 x int32
//
// The encoding is deterministic: segments written from the same records in
// the same order are bit-identical, which keeps compaction reproducible.
const (
	segMagic   = "OARSMTSG"
	segVersion = 1
	segHeaderSize = len(segMagic) + 4 + 32 + 8
	recFixedSize  = 32 + 3*4 + 3*4 + 8 + 1 + 4 + 4 + 4 // everything but the coord arrays
	edgeSize      = 6 * 4
	coordSize     = 3 * 4
	// maxDim bounds a decoded grid dimension; far above any routable
	// layout, low enough that a corrupt length cannot drive allocation.
	maxDim = 1 << 20
)

// Sentinel errors of the package.
var (
	// ErrCorruptSegment reports a segment whose payload failed structural
	// validation (the frame around it is checked separately by
	// internal/ckpt and fails with ckpt.ErrCorrupt). Open degrades both to
	// a skipped segment, never a wrong route.
	ErrCorruptSegment = errors.New("store: corrupt segment")
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("store: closed")
)

// appendRecord serialises one record.
func appendRecord(buf []byte, r *Record) []byte {
	buf = append(buf, r.Key[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.H))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.V))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.M))
	buf = appendCoord(buf, r.Root)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Cost))
	var flags byte
	if r.UsedSteiner {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Proposed))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Edges)))
	for _, e := range r.Edges {
		buf = appendCoord(buf, e[0])
		buf = appendCoord(buf, e[1])
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Steiner)))
	for _, c := range r.Steiner {
		buf = appendCoord(buf, c)
	}
	return buf
}

func appendCoord(buf []byte, c grid.Coord) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(c.H)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(c.V)))
	return binary.LittleEndian.AppendUint32(buf, uint32(int32(c.M)))
}

// encodeSegment serialises the records (in the given order) into a segment
// payload ready for ckpt framing.
func encodeSegment(fp Fingerprint, recs []*Record) []byte {
	n := segHeaderSize
	for _, r := range recs {
		n += recFixedSize + len(r.Edges)*edgeSize + len(r.Steiner)*coordSize
	}
	buf := make([]byte, 0, n)
	buf = append(buf, segMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, segVersion)
	buf = append(buf, fp[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(recs)))
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	return buf
}

// segReader is a bounds-checked cursor over a segment payload.
type segReader struct {
	buf []byte
	off int
	err error
}

func (d *segReader) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorruptSegment}, args...)...)
	}
}

func (d *segReader) remaining() int { return len(d.buf) - d.off }

func (d *segReader) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.remaining() < n {
		d.fail("truncated at offset %d (need %d bytes, have %d)", d.off, n, d.remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *segReader) u32() uint32 {
	if b := d.bytes(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *segReader) u64() uint64 {
	if b := d.bytes(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (d *segReader) coord() grid.Coord {
	return grid.Coord{H: int(int32(d.u32())), V: int(int32(d.u32())), M: int(int32(d.u32()))}
}

// decodeSegment parses a segment payload. Any structural problem — bad
// magic, truncation, implausible counts or dimensions — yields an error
// matching ErrCorruptSegment; the decoder never panics and never allocates
// more than the payload length justifies, which FuzzSegmentDecode pins.
func decodeSegment(payload []byte) (Fingerprint, []*Record, error) {
	var fp Fingerprint
	d := &segReader{buf: payload}
	if m := d.bytes(len(segMagic)); m != nil && string(m) != segMagic {
		return fp, nil, fmt.Errorf("%w: bad magic", ErrCorruptSegment)
	}
	if v := d.u32(); d.err == nil && v != segVersion {
		return fp, nil, fmt.Errorf("%w: version %d, want %d", ErrCorruptSegment, v, segVersion)
	}
	if b := d.bytes(32); b != nil {
		copy(fp[:], b)
	}
	count := d.u64()
	if d.err != nil {
		return fp, nil, d.err
	}
	if count > uint64(d.remaining()/recFixedSize) {
		return fp, nil, fmt.Errorf("%w: implausible record count %d for %d payload bytes",
			ErrCorruptSegment, count, d.remaining())
	}
	recs := make([]*Record, 0, count)
	for i := uint64(0); i < count; i++ {
		r, err := decodeRecord(d)
		if err != nil {
			return fp, nil, err
		}
		recs = append(recs, r)
	}
	if d.remaining() != 0 {
		return fp, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptSegment, d.remaining())
	}
	return fp, recs, nil
}

func decodeRecord(d *segReader) (*Record, error) {
	r := &Record{}
	if b := d.bytes(32); b != nil {
		copy(r.Key[:], b)
	}
	r.H, r.V, r.M = int(d.u32()), int(d.u32()), int(d.u32())
	r.Root = d.coord()
	r.Cost = math.Float64frombits(d.u64())
	if b := d.bytes(1); b != nil {
		if b[0]&^1 != 0 {
			return nil, fmt.Errorf("%w: unknown flag bits %#x", ErrCorruptSegment, b[0])
		}
		r.UsedSteiner = b[0]&1 != 0
	}
	r.Proposed = int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if r.H <= 0 || r.V <= 0 || r.M <= 0 || r.H > maxDim || r.V > maxDim || r.M > maxDim {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%dx%d", ErrCorruptSegment, r.H, r.V, r.M)
	}
	nEdges := d.u32()
	if d.err == nil && int(nEdges) > d.remaining()/edgeSize {
		return nil, fmt.Errorf("%w: implausible edge count %d", ErrCorruptSegment, nEdges)
	}
	if d.err == nil {
		r.Edges = make([][2]grid.Coord, nEdges)
		for i := range r.Edges {
			r.Edges[i] = [2]grid.Coord{d.coord(), d.coord()}
		}
	}
	nSteiner := d.u32()
	if d.err == nil && int(nSteiner) > d.remaining()/coordSize {
		return nil, fmt.Errorf("%w: implausible Steiner count %d", ErrCorruptSegment, nSteiner)
	}
	if d.err == nil {
		r.Steiner = make([]grid.Coord, nSteiner)
		for i := range r.Steiner {
			r.Steiner[i] = d.coord()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// segName returns the file name of segment sequence number seq.
func segName(seq int) string { return fmt.Sprintf("seg-%08d.seg", seq) }

// segEntry names one segment file of a directory.
type segEntry struct {
	seq  int
	path string
}

// listSegments returns the segments of dir by ascending sequence number,
// ignoring anything not matching the seg-NNNNNNNN.seg pattern (including
// leftover *.tmp files from a crashed write). A missing directory lists
// empty.
func listSegments(dir string) ([]segEntry, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var out []segEntry
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		var seq int
		if n, err := fmt.Sscanf(de.Name(), "seg-%d.seg", &seq); n != 1 || err != nil {
			continue
		}
		if de.Name() != segName(seq) {
			continue
		}
		out = append(out, segEntry{seq: seq, path: filepath.Join(dir, de.Name())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// writeSegmentFile atomically lands the payload as segment seq in dir,
// reusing the internal/ckpt frame and write discipline: ckpt framing
// (magic+version+length+SHA-256 trailer) into a temp file, fsync, close,
// rename onto the final name, directory fsync. A crash at any instruction
// leaves at worst a stale *.tmp that listSegments ignores.
//
// Fault point `store.write`: Error aborts before the rename (a clean
// crash), Partial renames a frame truncated mid-payload onto the final
// name (a torn write) so recovery paths can be exercised deterministically.
func writeSegmentFile(dir string, seq int, payload []byte) (string, error) {
	final := filepath.Join(dir, segName(seq))
	tmp := final + ".tmp"

	frame := make([]byte, 0, len(payload)+64)
	w := (*sliceWriter)(&frame)
	if err := ckpt.Encode(w, payload); err != nil {
		return "", err
	}
	data := frame
	torn := false
	if v := fault.Check("store.write"); v.Mode != fault.Off {
		switch v.Mode {
		case fault.Partial:
			data = data[:len(data)/2]
			torn = true
		default:
			return "", fmt.Errorf("store: write %s: %w", final, v.Err)
		}
	}

	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	syncDir(dir)
	if torn {
		return "", fmt.Errorf("%w: store: write %s: injected torn write", fault.ErrInjected, final)
	}
	return final, nil
}

// sliceWriter appends to the underlying slice; io.Writer over a
// preallocated buffer without bytes.Buffer's extra copy.
type sliceWriter []byte

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

// readSegmentFile loads and ckpt-validates one segment file's payload.
func readSegmentFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ckpt.Decode(f)
}

// syncDir fsyncs the directory so a rename is durable; best effort, since
// not every filesystem supports directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
