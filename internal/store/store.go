// Package store is the persistent, content-addressed route store behind
// internal/serve: the disk tier that lets a restarted daemon serve
// previously-routed layouts without re-running the selector.
//
// Layout of the store: an in-memory index (key → canonical-space Record,
// kept in recency order) over append-only segment files on disk. Every
// segment is an internal/ckpt frame — magic, version, length, SHA-256
// trailer, written temp+fsync+rename — holding a batch of records under a
// deterministic binary codec (segment.go), so a torn or bit-flipped
// segment is detected on load and skipped, never decoded into a wrong
// route. Keys are the augmentation-normalized canonical layout hashes of
// internal/serve, so the store is content-addressed: any of the 16
// symmetric orientations of a layout resolves to the same record.
//
// Writes are buffered: Put admits a record to the index immediately and
// queues it for the background flusher, which lands pending batches as new
// segments and, when the segment count passes a threshold, compacts —
// rewriting the live index (sorted by key, so compacted bytes are
// reproducible) into one segment and deleting the rest. An LRU-derived
// admission policy bounds the index at MaxEntries: Get/Put refresh
// recency, overflow evicts the coldest record, and the next compaction
// drops evicted records from disk, bounding disk use too.
//
// Every segment carries the selector fingerprint its records were routed
// with (selector.Fingerprint, the canonical Params()-order weight hash).
// Opening the store under a different fingerprint invalidates every
// mismatched record at load — a retrained model can never serve a stale
// route. Validation of individual records against a requesting layout is
// the caller's job (internal/serve replays records through its
// treeFromEntry Validate path and calls Drop on failures), so a hash
// collision degrades to a miss.
//
// The store never reads the wall clock on the data path — segment bytes
// are a pure function of the records — and only stamps compaction metrics
// through an injectable clock.
package store

import (
	"container/list"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"oarsmt/internal/errs"
	"oarsmt/internal/obs"
)

// Options parameterises Open.
type Options struct {
	// Dir is the segment directory, created if needed. Required.
	Dir string
	// Fingerprint is the serving selector's weight hash; records stored
	// under any other fingerprint are invalidated at Open.
	Fingerprint Fingerprint
	// MaxEntries bounds the live index (and, after compaction, disk use);
	// <= 0 means 4096.
	MaxEntries int
	// FlushEvery is how many pending records trigger a background segment
	// write; <= 0 means 32. Flush and Close land partial batches.
	FlushEvery int
	// CompactAfter is the segment-file count above which the background
	// flusher compacts; <= 0 means 8.
	CompactAfter int
	// Registry receives the store's metrics (store.hits, store.misses,
	// store.writes, store.compactions, store.invalidations, ...); nil
	// means a private registry.
	Registry *obs.Registry

	// now supplies the compaction metric timestamps, injectable so tests
	// never read the wall clock; nil means time.Now-based nanoseconds.
	now func() int64
}

func (o Options) withDefaults() Options {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 4096
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 32
	}
	if o.CompactAfter <= 0 {
		o.CompactAfter = 8
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.now == nil {
		o.now = func() int64 { return time.Now().UnixNano() } //oarsmt:allow nowallclock(compaction timestamps feed metrics only, never stored bytes)
	}
	return o
}

// Store is the persistent route store. All methods are safe for concurrent
// use. Create one with Open, shut it down with Close.
type Store struct {
	opts Options

	mu      sync.Mutex
	items   map[Key]*list.Element // element value: *Record
	ll      *list.List            // front = most recently used
	pending []Key                 // insertion-ordered keys awaiting a segment write
	queued  map[Key]bool          // pending membership
	segs    []segEntry            // live segment files, ascending seq
	nextSeq int
	closed  bool

	kick     chan struct{}
	stop     chan struct{}
	loopDone chan struct{}

	hits          *obs.Counter
	misses        *obs.Counter
	writes        *obs.Counter
	writeErrors   *obs.Counter
	compactions   *obs.Counter
	invalidations *obs.Counter
	evictions     *obs.Counter
	corruptSegs   *obs.Counter
	compactLat    *obs.Histogram
	lastCompact   *obs.FloatGauge
}

// Open loads (or creates) the store in opts.Dir: segments are replayed
// oldest-first so newer records win, corrupt segments are skipped, and
// records stored under a different selector fingerprint are invalidated.
// When the load left garbage behind — corrupt segments, invalidated
// records, or more segments than CompactAfter — the directory is compacted
// before Open returns, so a model swap immediately reclaims the disk.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("%w: store: Options.Dir is required", errs.ErrInvalidConfig)
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		opts:     opts,
		items:    make(map[Key]*list.Element),
		ll:       list.New(),
		queued:   make(map[Key]bool),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	s.register(opts.Registry)

	entries, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	dirty := false
	for _, e := range entries {
		if e.seq >= s.nextSeq {
			s.nextSeq = e.seq + 1
		}
		payload, err := readSegmentFile(e.path)
		if err != nil {
			// Torn write or bit rot: the frame did not validate. Skip the
			// whole segment — a later compaction deletes the file.
			s.corruptSegs.Inc()
			dirty = true
			continue
		}
		fp, recs, err := decodeSegment(payload)
		if err != nil {
			s.corruptSegs.Inc()
			dirty = true
			continue
		}
		if fp != opts.Fingerprint {
			// A different selector routed these records; every one is stale.
			s.invalidations.Add(int64(len(recs)))
			dirty = true
			continue
		}
		for _, r := range recs {
			s.insertLocked(r)
		}
		s.segs = append(s.segs, e)
	}
	if dirty || len(s.segs) > opts.CompactAfter {
		if err := s.compactLocked(); err != nil {
			return nil, fmt.Errorf("store: compact %s: %w", opts.Dir, err)
		}
	}
	//oarsmt:allow rawgo(store background flusher/compactor: keeps segment fsyncs off the routing hot path; joined by Close)
	go s.flushLoop()
	return s, nil
}

// register resolves the store's instruments on the registry.
func (s *Store) register(reg *obs.Registry) {
	s.hits = reg.Counter("store.hits")
	s.misses = reg.Counter("store.misses")
	s.writes = reg.Counter("store.writes")
	s.writeErrors = reg.Counter("store.write_errors")
	s.compactions = reg.Counter("store.compactions")
	s.invalidations = reg.Counter("store.invalidations")
	s.evictions = reg.Counter("store.evictions")
	s.corruptSegs = reg.Counter("store.corrupt_segments")
	s.compactLat = reg.Histogram("store.compact_latency")
	s.lastCompact = reg.FloatGauge("store.last_compact_unix_nanos")
	reg.GaugeFunc("store.entries", func() float64 { return float64(s.Len()) })
	reg.GaugeFunc("store.segments", func() float64 { return float64(s.Segments()) })
	reg.GaugeFunc("store.pending_writes", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.pending))
	})
}

// Get returns the record stored under key, refreshing its recency. The
// returned record is shared: callers must not mutate it.
func (s *Store) Get(key Key) (*Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses.Inc()
		return nil, false
	}
	s.ll.MoveToFront(el)
	s.hits.Inc()
	return el.Value.(*Record), true
}

// Put admits a record to the index and queues it for the next background
// segment write. A record beyond MaxEntries evicts the coldest entry. Puts
// on a closed store are dropped.
func (s *Store) Put(r *Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.insertLocked(r)
	if !s.queued[r.Key] {
		s.queued[r.Key] = true
		s.pending = append(s.pending, r.Key)
	}
	if len(s.pending) >= s.opts.FlushEvery {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
}

// Drop removes a record that failed the caller's validation (a hash
// collision, or a record inconsistent with the requesting layout), counting
// it as an invalidation so poisoned records never serve twice.
func (s *Store) Drop(key Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.removeLocked(el)
		s.invalidations.Inc()
	}
}

// insertLocked upserts the record and applies the admission bound.
func (s *Store) insertLocked(r *Record) {
	if el, ok := s.items[r.Key]; ok {
		s.ll.MoveToFront(el)
		el.Value = r
		return
	}
	s.items[r.Key] = s.ll.PushFront(r)
	for s.ll.Len() > s.opts.MaxEntries {
		s.removeLocked(s.ll.Back())
		s.evictions.Inc()
	}
}

func (s *Store) removeLocked(el *list.Element) {
	r := el.Value.(*Record)
	s.ll.Remove(el)
	delete(s.items, r.Key)
	if s.queued[r.Key] {
		delete(s.queued, r.Key)
		// The key stays in the pending slice; flushLocked skips keys no
		// longer queued, so an evicted record is never written out.
	}
}

// Flush synchronously writes the pending batch (if any) as a new segment.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

// Compact synchronously rewrites the live index into a single segment and
// deletes every other segment file, dropping evicted and superseded
// records from disk.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// Close stops the background flusher and lands any pending records in a
// final segment. Safe to call more than once.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.loopDone
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// Len returns the live record count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Segments returns the live segment-file count.
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs)
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Entries       int   `json:"entries"`
	Segments      int   `json:"segments"`
	PendingWrites int   `json:"pendingWrites"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Writes        int64 `json:"writes"`
	WriteErrors   int64 `json:"writeErrors"`
	Compactions   int64 `json:"compactions"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
	CorruptSegs   int64 `json:"corruptSegments"`
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, segs, pend := s.ll.Len(), len(s.segs), len(s.pending)
	s.mu.Unlock()
	return Stats{
		Entries:       entries,
		Segments:      segs,
		PendingWrites: pend,
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Writes:        s.writes.Load(),
		WriteErrors:   s.writeErrors.Load(),
		Compactions:   s.compactions.Load(),
		Invalidations: s.invalidations.Load(),
		Evictions:     s.evictions.Load(),
		CorruptSegs:   s.corruptSegs.Load(),
	}
}

// flushLoop is the background writer: it lands pending batches as segments
// when Put signals a full batch, compacting when the segment count passes
// the threshold. Write errors are counted, not fatal — the store is a
// cache, and a failed flush only costs warm restarts, never correctness.
func (s *Store) flushLoop() {
	defer close(s.loopDone)
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
			s.mu.Lock()
			// Near the segment bound, compact instead of flushing: the
			// compaction lands the pending batch too, so the directory never
			// needs a flush-then-compact double write.
			var err error
			if len(s.segs) >= s.opts.CompactAfter {
				err = s.compactLocked()
			} else {
				err = s.flushLocked()
			}
			if err != nil {
				s.writeErrors.Inc()
			}
			s.mu.Unlock()
		}
	}
}

// flushLocked writes the pending records (those still live in the index)
// as one new segment, sorted by key so segment bytes are deterministic.
func (s *Store) flushLocked() error {
	if len(s.pending) == 0 {
		return nil
	}
	recs := make([]*Record, 0, len(s.pending))
	for _, k := range s.pending {
		if !s.queued[k] {
			continue // evicted or dropped while pending
		}
		if el, ok := s.items[k]; ok {
			recs = append(recs, el.Value.(*Record))
		}
	}
	s.pending = s.pending[:0]
	clear(s.queued)
	if len(recs) == 0 {
		return nil
	}
	sort.Slice(recs, func(i, j int) bool { return lessKey(recs[i].Key, recs[j].Key) })
	seq := s.nextSeq
	path, err := writeSegmentFile(s.opts.Dir, seq, encodeSegment(s.opts.Fingerprint, recs))
	if err != nil {
		return err
	}
	s.nextSeq = seq + 1
	s.segs = append(s.segs, segEntry{seq: seq, path: path})
	s.writes.Add(int64(len(recs)))
	return nil
}

// compactLocked rewrites the live index into one fresh segment and deletes
// every older segment file (corrupt and superseded ones included). Pending
// records are part of the index, so a compaction also lands (and counts)
// the unflushed batch.
func (s *Store) compactLocked() error {
	start := s.opts.now()
	landed := 0
	for _, k := range s.pending {
		if s.queued[k] {
			landed++
		}
	}
	recs := make([]*Record, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		recs = append(recs, el.Value.(*Record))
	}
	sort.Slice(recs, func(i, j int) bool { return lessKey(recs[i].Key, recs[j].Key) })

	seq := s.nextSeq
	var kept []segEntry
	if len(recs) > 0 {
		path, err := writeSegmentFile(s.opts.Dir, seq, encodeSegment(s.opts.Fingerprint, recs))
		if err != nil {
			return err
		}
		s.nextSeq = seq + 1
		kept = []segEntry{{seq: seq, path: path}}
	}
	// Delete everything that is not the compacted segment, including
	// corrupt or foreign-fingerprint files skipped at Open.
	old, err := listSegments(s.opts.Dir)
	if err != nil {
		return err
	}
	for _, e := range old {
		if len(kept) == 1 && e.seq == kept[0].seq {
			continue
		}
		if err := os.Remove(e.path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	s.segs = kept
	s.pending = s.pending[:0]
	clear(s.queued)
	s.writes.Add(int64(landed))
	s.compactions.Inc()
	end := s.opts.now()
	s.compactLat.Observe(time.Duration(end - start))
	s.lastCompact.Set(float64(end))
	return nil
}

func lessKey(a, b Key) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
