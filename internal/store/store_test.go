package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"oarsmt/internal/fault"
	"oarsmt/internal/grid"
	"oarsmt/internal/obs"
)

// testOptions returns deterministic options over a fresh temp dir: a fixed
// fake clock and synchronous-friendly small batches.
func testOptions(t *testing.T, dir string) Options {
	t.Helper()
	var tick int64
	return Options{
		Dir:          dir,
		Fingerprint:  Fingerprint{1, 2, 3},
		MaxEntries:   64,
		FlushEvery:   4,
		CompactAfter: 3,
		Registry:     obs.NewRegistry(),
		now:          func() int64 { tick += 1000; return tick },
	}
}

func testRecord(i int) *Record {
	var k Key
	k[0], k[1] = byte(i), byte(i>>8)
	return &Record{
		Key:  k,
		H:    4 + i%3, V: 5, M: 2,
		Root: grid.Coord{H: i % 4, V: 1, M: 0},
		Edges: [][2]grid.Coord{
			{{H: 0, V: 0, M: 0}, {H: 1, V: 0, M: 0}},
			{{H: 1, V: 0, M: 0}, {H: 1, V: 1, M: 0}},
		},
		Steiner:     []grid.Coord{{H: 1, V: 0, M: 0}},
		UsedSteiner: i%2 == 0,
		Proposed:    i % 5,
		Cost:        float64(i) + 0.25,
	}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func recordsEqual(a, b *Record) bool {
	if a.Key != b.Key || a.H != b.H || a.V != b.V || a.M != b.M ||
		a.Root != b.Root || a.UsedSteiner != b.UsedSteiner ||
		a.Proposed != b.Proposed || a.Cost != b.Cost ||
		len(a.Edges) != len(b.Edges) || len(a.Steiner) != len(b.Steiner) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	for i := range a.Steiner {
		if a.Steiner[i] != b.Steiner[i] {
			return false
		}
	}
	return true
}

func TestSegmentCodecRoundTrip(t *testing.T) {
	fp := Fingerprint{9, 8, 7}
	recs := []*Record{testRecord(1), testRecord(2), testRecord(300)}
	payload := encodeSegment(fp, recs)
	gotFP, got, err := decodeSegment(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != fp {
		t.Fatalf("fingerprint round trip: got %v want %v", gotFP, fp)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !recordsEqual(got[i], recs[i]) {
			t.Errorf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
	// The codec is deterministic: encoding again is bit-identical.
	if !bytes.Equal(payload, encodeSegment(fp, recs)) {
		t.Error("re-encoding the same records changed the bytes")
	}
}

func TestSegmentCodecRejectsCorruption(t *testing.T) {
	payload := encodeSegment(Fingerprint{1}, []*Record{testRecord(1), testRecord(2)})
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("NOTMAGIC"), payload[8:]...),
		"truncated":  payload[:len(payload)-5],
		"trailing":   append(append([]byte{}, payload...), 0xFF),
		"mid header": payload[:10],
	}
	for name, b := range cases {
		if _, _, err := decodeSegment(b); !errors.Is(err, ErrCorruptSegment) {
			t.Errorf("%s: err = %v, want ErrCorruptSegment", name, err)
		}
	}
	// A corrupted record count must not drive allocation or succeed.
	huge := append([]byte{}, payload...)
	copy(huge[segHeaderSize-8:segHeaderSize], []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	if _, _, err := decodeSegment(huge); !errors.Is(err, ErrCorruptSegment) {
		t.Errorf("huge count: err = %v, want ErrCorruptSegment", err)
	}
}

func TestStorePutGetFlushReload(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	s := mustOpen(t, opts)

	var recs []*Record
	for i := 0; i < 10; i++ {
		r := testRecord(i)
		recs = append(recs, r)
		s.Put(r)
	}
	for _, r := range recs {
		got, ok := s.Get(r.Key)
		if !ok || !recordsEqual(got, r) {
			t.Fatalf("Get(%v) = %+v, %v", r.Key[:2], got, ok)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory serves every record.
	s2 := mustOpen(t, testOptions(t, dir))
	if s2.Len() != len(recs) {
		t.Fatalf("reloaded %d records, want %d", s2.Len(), len(recs))
	}
	for _, r := range recs {
		got, ok := s2.Get(r.Key)
		if !ok || !recordsEqual(got, r) {
			t.Fatalf("reloaded Get(%v) = %+v, %v", r.Key[:2], got, ok)
		}
	}
	st := s2.Stats()
	if st.Hits != int64(len(recs)) || st.Misses != 0 {
		t.Errorf("stats after warm reads: %+v", st)
	}
}

func TestStoreFingerprintInvalidation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testOptions(t, dir))
	for i := 0; i < 6; i++ {
		s.Put(testRecord(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Same dir, different selector fingerprint: 100% invalidation.
	opts := testOptions(t, dir)
	opts.Fingerprint = Fingerprint{0xAA}
	s2 := mustOpen(t, opts)
	if s2.Len() != 0 {
		t.Fatalf("store kept %d records across a fingerprint change", s2.Len())
	}
	st := s2.Stats()
	if st.Invalidations != 6 {
		t.Errorf("invalidations = %d, want 6", st.Invalidations)
	}
	if _, ok := s2.Get(testRecord(0).Key); ok {
		t.Error("stale record served after fingerprint change")
	}
	// The stale segments were compacted away on open.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Errorf("%d stale segment files survived the open-time compaction", len(segs))
	}
}

// TestStoreTornWriteSkipsSegment mirrors ckpt.Latest's corrupt-frame
// recovery: a segment truncated mid-frame (a torn write) must be skipped
// on open while every other segment keeps serving.
func TestStoreTornWriteSkipsSegment(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testOptions(t, dir))
	s.Put(testRecord(1))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Put(testRecord(2))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("have %d segments, want 2", len(segs))
	}
	// Tear the newest segment mid-frame.
	info, err := os.Stat(segs[1].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[1].path, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, testOptions(t, dir))
	if _, ok := s2.Get(testRecord(1).Key); !ok {
		t.Error("record from the intact segment was lost")
	}
	if _, ok := s2.Get(testRecord(2).Key); ok {
		t.Error("record from the torn segment was served")
	}
	st := s2.Stats()
	if st.CorruptSegs != 1 {
		t.Errorf("corrupt segments = %d, want 1", st.CorruptSegs)
	}
	// The torn file was deleted by the open-time compaction and the store
	// keeps accepting writes.
	s2.Put(testRecord(3))
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(testRecord(3).Key); !ok {
		t.Error("store stopped serving after recovering from a torn write")
	}
}

// TestStoreInjectedTornWrite drives the same recovery through the
// store.write fault point, the way crash-test exercises ckpt.write.
func TestStoreInjectedTornWrite(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testOptions(t, dir))
	s.Put(testRecord(1))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	fault.Set("store.write", fault.Options{Mode: fault.Partial, Times: 1})
	defer fault.Reset()
	s.Put(testRecord(2))
	if err := s.Flush(); err == nil {
		t.Fatal("injected torn write reported no error")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, testOptions(t, dir))
	if _, ok := s2.Get(testRecord(1).Key); !ok {
		t.Error("intact segment lost after injected torn write")
	}
	if st := s2.Stats(); st.CorruptSegs != 1 {
		t.Errorf("corrupt segments = %d, want 1", st.CorruptSegs)
	}
}

func TestStoreCompactionMergesAndBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.CompactAfter = 100 // no auto-compaction; exercise Compact directly
	s := mustOpen(t, opts)
	for i := 0; i < 12; i++ {
		s.Put(testRecord(i))
		if err := s.Flush(); err != nil { // one segment per record
			t.Fatal(err)
		}
	}
	if s.Segments() != 12 {
		t.Fatalf("have %d segments, want 12", s.Segments())
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Segments() != 1 {
		t.Fatalf("after compaction: %d segments, want 1", s.Segments())
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("on disk after compaction: %d files, want 1", len(segs))
	}
	for i := 0; i < 12; i++ {
		if _, ok := s.Get(testRecord(i).Key); !ok {
			t.Fatalf("record %d lost in compaction", i)
		}
	}
	if st := s.Stats(); st.Compactions != 1 {
		t.Errorf("compactions = %d, want 1", st.Compactions)
	}
}

func TestStoreAdmissionEvictsLRUAndCompactionDropsEvicted(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.MaxEntries = 4
	opts.CompactAfter = 100
	s := mustOpen(t, opts)
	for i := 0; i < 8; i++ {
		s.Put(testRecord(i))
	}
	if s.Len() != 4 {
		t.Fatalf("index holds %d records, want 4", s.Len())
	}
	// Oldest four were evicted.
	for i := 0; i < 4; i++ {
		if _, ok := s.Get(testRecord(i).Key); ok {
			t.Errorf("evicted record %d still served", i)
		}
	}
	if st := s.Stats(); st.Evictions != 4 {
		t.Errorf("evictions = %d, want 4", st.Evictions)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// A reload sees only the admitted records: compaction dropped the
	// evicted ones from disk.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	opts2 := testOptions(t, dir)
	opts2.MaxEntries = 4
	s2 := mustOpen(t, opts2)
	if s2.Len() != 4 {
		t.Fatalf("reloaded %d records, want 4", s2.Len())
	}
	for i := 4; i < 8; i++ {
		if _, ok := s2.Get(testRecord(i).Key); !ok {
			t.Errorf("admitted record %d missing after reload", i)
		}
	}
}

func TestStoreDropInvalidates(t *testing.T) {
	s := mustOpen(t, testOptions(t, t.TempDir()))
	r := testRecord(1)
	s.Put(r)
	s.Drop(r.Key)
	if _, ok := s.Get(r.Key); ok {
		t.Error("dropped record still served")
	}
	if st := s.Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	// The dropped record must not resurface via the pending queue.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Writes != 0 {
		t.Errorf("writes = %d, want 0 (dropped before flush)", st.Writes)
	}
}

func TestStoreBackgroundFlushLandsBatch(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.FlushEvery = 2
	s := mustOpen(t, opts)
	s.Put(testRecord(1))
	s.Put(testRecord(2)) // reaches FlushEvery: kicks the background flusher
	// Close joins the flusher, so afterwards the batch is durable either
	// via the background write or the final flush.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, testOptions(t, dir))
	if s2.Len() != 2 {
		t.Fatalf("reloaded %d records, want 2", s2.Len())
	}
}

func TestStoreClosedOps(t *testing.T) {
	s := mustOpen(t, testOptions(t, t.TempDir()))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush on closed store: %v, want ErrClosed", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact on closed store: %v, want ErrClosed", err)
	}
	s.Put(testRecord(1)) // dropped, not panicking
	if s.Len() != 0 {
		t.Error("Put on closed store admitted a record")
	}
}

// TestStoreSegmentBytesDeterministic pins the reproducibility claim:
// flushing the same records yields bit-identical segment files, wherever
// the directory lives.
func TestStoreSegmentBytesDeterministic(t *testing.T) {
	write := func(dir string) []byte {
		opts := testOptions(t, dir)
		s := mustOpen(t, opts)
		for i := 5; i >= 0; i-- { // insertion order must not matter
			s.Put(testRecord(i))
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := listSegments(dir)
		if err != nil || len(segs) != 1 {
			t.Fatalf("segments: %v, err %v", segs, err)
		}
		b, err := os.ReadFile(segs[0].path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := write(filepath.Join(t.TempDir(), "a"))
	b := write(filepath.Join(t.TempDir(), "b"))
	if !bytes.Equal(a, b) {
		t.Error("same records produced different segment bytes")
	}
}
