package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSegmentDecode hardens the segment codec against arbitrary bytes: the
// decoder must never panic, never allocate unboundedly, and anything it
// does accept must re-encode bit-identically (the decode→encode fixpoint
// that compaction depends on for reproducible segment bytes).
func FuzzSegmentDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(encodeSegment(Fingerprint{}, nil))
	f.Add(encodeSegment(Fingerprint{1, 2, 3}, []*Record{testRecord(1)}))
	f.Add(encodeSegment(Fingerprint{0xAB}, []*Record{testRecord(0), testRecord(7), testRecord(255)}))
	long := encodeSegment(Fingerprint{4}, []*Record{testRecord(2)})
	f.Add(long[:len(long)-3]) // torn mid-record
	f.Fuzz(func(t *testing.T, data []byte) {
		fp, recs, err := decodeSegment(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptSegment) {
				t.Fatalf("non-sentinel decode error: %v", err)
			}
			return
		}
		// Accepted payloads must survive a decode→encode round trip.
		if again := encodeSegment(fp, recs); !bytes.Equal(again, data) {
			t.Fatalf("decode→encode not a fixpoint:\n in: %x\nout: %x", data, again)
		}
	})
}
