package store

import (
	"testing"

	"oarsmt/internal/obs"
)

// benchRecords builds n distinct records of routing-typical size.
func benchRecords(n int) []*Record {
	recs := make([]*Record, n)
	for i := range recs {
		recs[i] = testRecord(i)
	}
	return recs
}

func benchOptions(dir string) Options {
	var tick int64
	return Options{
		Dir:      dir,
		MaxEntries: 1 << 20,
		Registry: obs.NewRegistry(),
		now:      func() int64 { tick += 1000; return tick },
	}
}

// BenchmarkStoreSegmentWrite measures segment write throughput: encode +
// ckpt frame + fsync + rename per 256-record batch.
func BenchmarkStoreSegmentWrite(b *testing.B) {
	dir := b.TempDir()
	recs := benchRecords(256)
	payload := encodeSegment(Fingerprint{1}, recs)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := writeSegmentFile(dir, i, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreCompact measures compaction throughput: 16 segments of 64
// records merged into one.
func BenchmarkStoreCompact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		opts := benchOptions(b.TempDir())
		opts.FlushEvery = 1 << 30 // manual flushes only
		opts.CompactAfter = 1 << 30
		s, err := Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		for seg := 0; seg < 16; seg++ {
			for _, r := range benchRecords(64) {
				r.Key[30], r.Key[31] = byte(seg), r.Key[0] // distinct per segment
				s.Put(r)
			}
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := s.Compact(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Close()
	}
}

// BenchmarkStoreOpenWarm measures the warm-restart cost itself: replaying a
// compacted 4096-record directory into a fresh index.
func BenchmarkStoreOpenWarm(b *testing.B) {
	dir := b.TempDir()
	opts := benchOptions(dir)
	s, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		r := testRecord(i)
		r.Key[29] = byte(i >> 16)
		s.Put(r)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(benchOptions(dir))
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != 4096 {
			b.Fatalf("warm open loaded %d records", s.Len())
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkStoreGet measures the index lookup the serving hot path pays on
// a disk-tier hit (the record decode already happened at Open).
func BenchmarkStoreGet(b *testing.B) {
	s, err := Open(benchOptions(b.TempDir()))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const n = 1024
	keys := make([]Key, n)
	for i := 0; i < n; i++ {
		r := testRecord(i)
		r.Key[28] = byte(i >> 16)
		keys[i] = r.Key
		s.Put(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(keys[i%n]); !ok {
			b.Fatal("miss")
		}
	}
}
