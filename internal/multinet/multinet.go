// Package multinet routes several nets on one layout, the setting the
// paper's introduction motivates: in a real IC design, macros, blockages
// and *pre-routed wires* are obstacles for every later net. The paper's
// router handles a single net; this package sequences it across nets —
// each routed tree is committed as an obstacle for the nets after it —
// and adds the classic negotiation loop of the rip-up-and-reroute
// literature ([3], [6] in the paper's references): when a net becomes
// unroutable, previously routed nets are ripped up and re-routed after it.
package multinet

import (
	"fmt"
	"sort"

	"oarsmt/internal/errs"
	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/route"
)

// Net is one net to route: a name and its pin vertices on the shared
// graph.
type Net struct {
	Name string
	Pins []grid.VertexID
}

// TreeRouter routes one net on a graph; both the RL router and the
// algorithmic baselines satisfy it via small adapters (see RouterFunc).
type TreeRouter interface {
	RouteNet(in *layout.Instance) (*route.Tree, error)
}

// RouterFunc adapts a function to TreeRouter.
type RouterFunc func(in *layout.Instance) (*route.Tree, error)

// RouteNet implements TreeRouter.
func (f RouterFunc) RouteNet(in *layout.Instance) (*route.Tree, error) { return f(in) }

// Config parameterises the multi-net run.
type Config struct {
	// MaxRipupRounds bounds the negotiation loop; 0 disables rip-up.
	MaxRipupRounds int
}

// Result is the outcome of routing all nets.
type Result struct {
	// Trees maps net index to its routed tree, in the input net order.
	Trees []*route.Tree
	// TotalCost is the summed tree cost.
	TotalCost float64
	// Order is the net order finally used (after rip-up reordering).
	Order []int
	// RipupRounds counts negotiation rounds performed.
	RipupRounds int
}

// Route routes every net on the base graph with the given single-net
// router. Nets are first ordered by ascending bounding-box half-perimeter
// (small nets lock in less routing area), then routed sequentially with
// each committed tree blocking its vertices; on failure, the negotiation
// loop moves the stuck net earlier and retries.
func Route(base *grid.Graph, nets []Net, router TreeRouter, cfg Config) (*Result, error) {
	if len(nets) == 0 {
		return nil, fmt.Errorf("%w: multinet: no nets", errs.ErrInvalidLayout)
	}
	for i, n := range nets {
		if len(n.Pins) < 2 {
			return nil, fmt.Errorf("%w: multinet: net %d (%s) has %d pins", errs.ErrInvalidLayout, i, n.Name, len(n.Pins))
		}
		for _, p := range n.Pins {
			if base.Blocked(p) {
				return nil, fmt.Errorf("%w: multinet: net %s pin at %v is blocked", errs.ErrInvalidLayout, n.Name, base.CoordOf(p))
			}
		}
	}
	order := initialOrder(base, nets)

	rounds := 0
	for {
		res, stuck := tryOrder(base, nets, order, router)
		if stuck < 0 {
			res.RipupRounds = rounds
			return res, nil
		}
		if rounds >= cfg.MaxRipupRounds {
			return nil, fmt.Errorf("%w: multinet: net %s unroutable after %d rip-up rounds",
				errs.ErrNoPath, nets[order[stuck]].Name, rounds)
		}
		rounds++
		// Negotiation: promote the stuck net to the front of the order so
		// it routes before the nets that boxed it in.
		promoted := order[stuck]
		copy(order[1:], order[:stuck])
		order[0] = promoted
	}
}

// tryOrder routes the nets in the given order; it returns the result and
// -1 on success, or the order position of the first unroutable net.
func tryOrder(base *grid.Graph, nets []Net, order []int, router TreeRouter) (*Result, int) {
	g := base.Clone()
	res := &Result{
		Trees: make([]*route.Tree, len(nets)),
		Order: append([]int(nil), order...),
	}
	// Pins of unrouted nets must stay unblocked; remember them so a
	// committed tree passing adjacent doesn't hide a later pin. (Committed
	// trees block their vertices, and a tree never uses another net's pin
	// because pins of unrouted nets are pre-blocked — except the net being
	// routed, whose pins we temporarily free.)
	for _, idx := range order {
		for _, p := range nets[idx].Pins {
			g.Block(p)
		}
	}
	for pos, idx := range order {
		net := nets[idx]
		for _, p := range net.Pins {
			g.Unblock(p)
		}
		in := &layout.Instance{Name: net.Name, Graph: g, Pins: net.Pins}
		if !in.Routable() {
			return res, pos
		}
		tree, err := router.RouteNet(in)
		if err != nil {
			return res, pos
		}
		res.Trees[idx] = tree
		res.TotalCost += tree.Cost
		// Commit: the routed wire blocks its vertices for later nets.
		for _, v := range tree.Vertices() {
			g.Block(v)
		}
	}
	return res, -1
}

// initialOrder sorts nets by ascending bounding-box half-perimeter, the
// classic net-ordering heuristic.
func initialOrder(g *grid.Graph, nets []Net) []int {
	type keyed struct {
		idx int
		hp  int
	}
	ks := make([]keyed, len(nets))
	for i, n := range nets {
		b := route.BoundsOf(g, n.Pins)
		ks[i] = keyed{idx: i, hp: (b.HHi - b.HLo) + (b.VHi - b.VLo)}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].hp != ks[j].hp {
			return ks[i].hp < ks[j].hp
		}
		return ks[i].idx < ks[j].idx
	})
	order := make([]int, len(nets))
	for i, k := range ks {
		order[i] = k.idx
	}
	return order
}

// Validate checks a multi-net result: every net's tree spans its pins,
// avoids the base obstacles, and no two trees share a vertex.
func Validate(base *grid.Graph, nets []Net, res *Result) error {
	used := map[grid.VertexID]int{}
	for i, tree := range res.Trees {
		if tree == nil {
			return fmt.Errorf("%w: multinet: net %d has no tree", errs.ErrInvalidTree, i)
		}
		if err := tree.Validate(base, nets[i].Pins); err != nil {
			return fmt.Errorf("multinet: net %s: %w", nets[i].Name, err)
		}
		for _, v := range tree.Vertices() {
			if other, clash := used[v]; clash {
				return fmt.Errorf("%w: multinet: nets %s and %s share vertex %v",
					errs.ErrInvalidTree, nets[other].Name, nets[i].Name, base.CoordOf(v))
			}
			used[v] = i
		}
	}
	return nil
}
