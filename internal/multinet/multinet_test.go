package multinet

import (
	"testing"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/route"
)

// plainRouter routes with the plain OARMST builder.
func plainRouter() TreeRouter {
	return RouterFunc(func(in *layout.Instance) (*route.Tree, error) {
		return route.NewRouter(in.Graph).OARMST(in.Pins)
	})
}

func TestTwoDisjointNets(t *testing.T) {
	g, err := grid.NewUniform(8, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	nets := []Net{
		{Name: "a", Pins: []grid.VertexID{g.Index(0, 0, 0), g.Index(3, 0, 0)}},
		{Name: "b", Pins: []grid.VertexID{g.Index(0, 7, 0), g.Index(3, 7, 0)}},
	}
	res, err := Route(g, nets, plainRouter(), Config{MaxRipupRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, nets, res); err != nil {
		t.Fatal(err)
	}
	if res.TotalCost != 6 {
		t.Errorf("total cost = %v, want 6", res.TotalCost)
	}
	if res.RipupRounds != 0 {
		t.Errorf("rip-up rounds = %d, want 0", res.RipupRounds)
	}
}

func TestCommittedNetBlocksLaterNets(t *testing.T) {
	// Net b routes straight down column 2 (rows 0-3); net a must then
	// cross that committed wire and can only do so at row 4.
	g, _ := grid.NewUniform(5, 5, 1, 1)
	nets := []Net{
		{Name: "a", Pins: []grid.VertexID{g.Index(0, 1, 0), g.Index(4, 1, 0)}},
		{Name: "b", Pins: []grid.VertexID{g.Index(2, 0, 0), g.Index(2, 3, 0)}},
	}
	res, err := Route(g, nets, plainRouter(), Config{MaxRipupRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, nets, res); err != nil {
		t.Fatal(err)
	}
	// b is direct (3); a detours over row 4 (10). Direct-only would be 7.
	if res.TotalCost != 13 {
		t.Errorf("total cost = %v, want 13 (3 + detour 10)", res.TotalCost)
	}
}

func TestRipupPromotesStuckNet(t *testing.T) {
	// Single-row grid: whichever net routes first blocks the other, so
	// success requires... actually on one row both cannot coexist; use two
	// rows where net order matters: net "long" spans the full width on a
	// 2-row grid; net "short" sits inside the same row. If long routes
	// first along row 0, short (whose pins are on row 0) becomes
	// unroutable; rip-up must promote short.
	g, _ := grid.NewUniform(6, 2, 1, 1)
	long := Net{Name: "long", Pins: []grid.VertexID{g.Index(0, 0, 0), g.Index(5, 0, 0)}}
	short := Net{Name: "short", Pins: []grid.VertexID{g.Index(2, 0, 0), g.Index(3, 0, 0)}}
	nets := []Net{long, short}
	res, err := Route(g, nets, plainRouter(), Config{MaxRipupRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, nets, res); err != nil {
		t.Fatal(err)
	}
	// Short must use its direct row-0 connection; long detours via row 1.
	if res.Trees[1].Cost != 1 {
		t.Errorf("short net cost = %v, want 1", res.Trees[1].Cost)
	}
	if res.Trees[0].Cost <= 5 {
		t.Errorf("long net cost = %v, want a detour above 5", res.Trees[0].Cost)
	}
}

func TestUnroutableReportsError(t *testing.T) {
	// Three nets through a single-tile bottleneck cannot all route.
	g, _ := grid.NewUniform(3, 1, 1, 1)
	nets := []Net{
		{Name: "a", Pins: []grid.VertexID{g.Index(0, 0, 0), g.Index(2, 0, 0)}},
		{Name: "b", Pins: []grid.VertexID{g.Index(1, 0, 0), g.Index(2, 0, 0)}},
	}
	if _, err := Route(g, nets, plainRouter(), Config{MaxRipupRounds: 2}); err == nil {
		t.Error("conflicting nets should fail")
	}
}

func TestInputValidation(t *testing.T) {
	g, _ := grid.NewUniform(4, 4, 1, 1)
	if _, err := Route(g, nil, plainRouter(), Config{}); err == nil {
		t.Error("no nets should fail")
	}
	one := []Net{{Name: "x", Pins: []grid.VertexID{0}}}
	if _, err := Route(g, one, plainRouter(), Config{}); err == nil {
		t.Error("1-pin net should fail")
	}
	g.Block(g.Index(1, 1, 0))
	bad := []Net{{Name: "y", Pins: []grid.VertexID{g.Index(1, 1, 0), 0}}}
	if _, err := Route(g, bad, plainRouter(), Config{}); err == nil {
		t.Error("blocked pin should fail")
	}
}

func TestBaseGraphUntouched(t *testing.T) {
	g, _ := grid.NewUniform(6, 6, 1, 1)
	nets := []Net{
		{Name: "a", Pins: []grid.VertexID{g.Index(0, 0, 0), g.Index(5, 5, 0)}},
	}
	if _, err := Route(g, nets, plainRouter(), Config{}); err != nil {
		t.Fatal(err)
	}
	if g.NumBlocked() != 0 {
		t.Error("multinet routing mutated the base graph")
	}
}

func TestPinsOfLaterNetsAreProtected(t *testing.T) {
	// Net a's cheapest route passes exactly through net b's pin; the pin
	// pre-blocking must force a detour so b stays routable.
	g, _ := grid.NewUniform(5, 3, 1, 1)
	nets := []Net{
		{Name: "a", Pins: []grid.VertexID{g.Index(0, 1, 0), g.Index(4, 1, 0)}},
		{Name: "b", Pins: []grid.VertexID{g.Index(2, 1, 0), g.Index(2, 0, 0)}},
	}
	res, err := Route(g, nets, plainRouter(), Config{MaxRipupRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, nets, res); err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Trees[0].Vertices() {
		if v == g.Index(2, 1, 0) || v == g.Index(2, 0, 0) {
			t.Error("net a routed through net b's pin")
		}
	}
}

func TestValidateCatchesSharing(t *testing.T) {
	g, _ := grid.NewUniform(4, 1, 1, 1)
	nets := []Net{
		{Name: "a", Pins: []grid.VertexID{g.Index(0, 0, 0), g.Index(1, 0, 0)}},
		{Name: "b", Pins: []grid.VertexID{g.Index(2, 0, 0), g.Index(3, 0, 0)}},
	}
	r := route.NewRouter(g)
	t1, _ := r.OARMST([]grid.VertexID{g.Index(0, 0, 0), g.Index(2, 0, 0)}) // overlaps b's pin
	t2, _ := r.OARMST(nets[1].Pins)
	res := &Result{Trees: []*route.Tree{t1, t2}}
	if err := Validate(g, nets, res); err == nil {
		t.Error("overlapping trees should fail validation")
	}
}
