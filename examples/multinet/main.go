// Multinet: route several nets on one multi-layer layout — the setting
// the paper's introduction motivates, where pre-routed wires are obstacles
// for later nets. Committed trees block their vertices; when a net gets
// boxed in, the rip-up-and-reroute negotiation promotes it and retries.
//
// Run from the repository root:
//
//	go run ./examples/multinet
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"oarsmt"
)

func main() {
	log.SetFlags(0)

	// One shared 16x16 two-layer fabric with a central macro.
	base, err := oarsmt.RandomInstance(4, oarsmt.RandomSpec{
		H: 16, V: 16, MinM: 2, MaxM: 2,
		MinPins: 2, MaxPins: 2, // pins unused; we define nets below
		MinObstacles: 0, MaxObstacles: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := base.Graph
	for h := 6; h <= 9; h++ {
		for v := 6; v <= 9; v++ {
			g.Block(g.Index(h, v, 0)) // macro on layer 0
		}
	}

	nets := []oarsmt.Net{
		{Name: "clk", Pins: []oarsmt.VertexID{
			g.Index(1, 1, 0), g.Index(14, 1, 0), g.Index(1, 14, 0), g.Index(14, 14, 0),
		}},
		{Name: "dbus", Pins: []oarsmt.VertexID{
			g.Index(0, 8, 0), g.Index(15, 8, 0),
		}},
		{Name: "rst", Pins: []oarsmt.VertexID{
			g.Index(8, 0, 0), g.Index(8, 15, 0), g.Index(12, 12, 1),
		}},
		{Name: "io0", Pins: []oarsmt.VertexID{
			g.Index(0, 0, 1), g.Index(5, 3, 1),
		}},
	}

	sel, err := oarsmt.PretrainedSelector()
	if err != nil {
		log.Fatal(err)
	}
	res, err := oarsmt.RouteNets(context.Background(), g, nets, sel, oarsmt.MultiNetConfig{MaxRipupRounds: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := oarsmt.ValidateNets(g, nets, res); err != nil {
		log.Fatalf("validation: %v", err)
	}

	fmt.Printf("routed %d nets, total cost %.0f, rip-up rounds %d\n",
		len(nets), res.TotalCost, res.RipupRounds)
	fmt.Print("routing order:")
	for _, idx := range res.Order {
		fmt.Printf(" %s", nets[idx].Name)
	}
	fmt.Println()
	for i, tree := range res.Trees {
		hor, ver, via := tree.WirelengthByAxis(g)
		fmt.Printf("  %-5s cost %5.0f (h %4.0f, v %4.0f, via %3.0f), %d vertices\n",
			nets[i].Name, tree.Cost, hor, ver, via, tree.NumVertices())
	}
	fmt.Println("every net spans its pins, avoids the macro, and shares no vertex with another net")

	// Draw all nets in one SVG, one colour per net.
	svgPath := filepath.Join(os.TempDir(), "oarsmt-multinet.svg")
	f, err := os.Create(svgPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := oarsmt.WriteSVGMulti(f, base, res.Trees); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", svgPath)
}
