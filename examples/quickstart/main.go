// Quickstart: build a small multi-layer layout, route it with the plain
// OARMST, with an algorithmic baseline, and with the RL router, and print
// the trees.
//
// Run from the repository root:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"oarsmt"
)

func main() {
	log.SetFlags(0)

	// A 12x12 two-layer layout with five pins and a few obstacle runs.
	in, err := oarsmt.RandomInstance(7, oarsmt.RandomSpec{
		H: 12, V: 12,
		MinM: 2, MaxM: 2,
		MinPins: 5, MaxPins: 5,
		MinObstacles: 10, MaxObstacles: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layout: %dx%dx%d Hanan grid, %d pins, %d blocked vertices\n",
		in.Graph.H, in.Graph.V, in.Graph.M, in.NumPins(), in.Graph.NumBlocked())

	// 1. The spanning tree with no Steiner points (the ST-to-MST baseline).
	mst, err := oarsmt.PlainOARMST(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain OARMST: cost %.0f with %d edges\n", mst.Cost, len(mst.Edges))

	// 2. The strongest algorithmic baseline, Lin et al. [14].
	lin18, err := oarsmt.RouteBaseline(oarsmt.Lin18, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lin18 [14]:   cost %.0f with %d edges\n", lin18.Cost, len(lin18.Edges))

	// 3. The RL router with the selector shipped in the repository
	// (trained by cmd/oarsmt-train with the combinatorial-MCTS pipeline;
	// see examples/training for running the pipeline yourself, and
	// oarsmt.LoadModel for loading your own model file).
	sel, err := oarsmt.PretrainedSelector()
	if err != nil {
		log.Fatal(err)
	}

	router := oarsmt.NewRouter(sel)
	res, err := router.Route(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RL router:    cost %.0f with %d edges (%d Steiner points, select %v, total %v)\n",
		res.Tree.Cost, len(res.Tree.Edges), len(res.SteinerPoints), res.SelectTime, res.TotalTime)
	for _, sp := range res.SteinerPoints {
		fmt.Printf("  Steiner point at %v\n", in.Graph.CoordOf(sp))
	}

	// The routed tree is a checked data structure.
	if err := res.Tree.Validate(in.Graph, in.Pins); err != nil {
		log.Fatalf("invalid tree: %v", err)
	}
	fmt.Println("tree validated: spans all pins, avoids all obstacles, acyclic")
}
