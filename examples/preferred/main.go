// Preferred: demonstrate preferred-direction routing layers — the
// "arbitrary routing costs between grids" generality the paper claims for
// its Hanan-graph formulation, applied to a realistic metal-stack cost
// model where even layers prefer horizontal wires and odd layers prefer
// vertical wires (the non-preferred direction costs 4x).
//
// The router responds the way a detailed router must: long horizontal runs
// stay on even layers, long vertical runs migrate through vias to odd
// layers, and the total via count balances against the direction penalty.
//
// Run from the repository root:
//
//	go run ./examples/preferred
package main

import (
	"fmt"
	"log"

	"oarsmt"
)

func main() {
	log.SetFlags(0)

	const penalty = 4.0
	with, err := oarsmt.RandomInstance(5, oarsmt.RandomSpec{
		H: 14, V: 14, MinM: 4, MaxM: 4,
		MinPins: 6, MaxPins: 6,
		MinObstacles: 10, MaxObstacles: 10,
		MinEdgeCost: 10, MaxEdgeCost: 10, // uniform wire cost isolates the effect
		MinViaCost: 6, MaxViaCost: 6,
		PreferredDirectionPenalty: penalty,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The identical layout without direction preferences.
	without := with.Clone()
	if err := without.Graph.SetLayerScales(nil, nil); err != nil {
		log.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		in   *oarsmt.Instance
	}{
		{"isotropic layers", without},
		{fmt.Sprintf("preferred directions (penalty %.0fx)", penalty), with},
	} {
		tree, err := oarsmt.RouteBaseline(oarsmt.Lin18, tc.in)
		if err != nil {
			log.Fatal(err)
		}
		// Decompose wirelength per layer and direction.
		type lw struct{ hor, ver float64 }
		perLayer := make([]lw, tc.in.Graph.M)
		vias := 0
		for _, e := range tree.Edges {
			ca := tc.in.Graph.CoordOf(e.A)
			cb := tc.in.Graph.CoordOf(e.B)
			cost := tc.in.Graph.EdgeCost(e.A, e.B)
			switch {
			case ca.M != cb.M:
				vias++
			case ca.V == cb.V:
				perLayer[ca.M].hor += cost
			default:
				perLayer[ca.M].ver += cost
			}
		}
		fmt.Printf("%s: total cost %.0f, %d vias\n", tc.name, tree.Cost, vias)
		for m, l := range perLayer {
			pref := "H-preferred"
			if m%2 == 1 {
				pref = "V-preferred"
			}
			if tc.in.Graph.HScale == nil {
				pref = "isotropic"
			}
			fmt.Printf("  layer %d (%-11s): horizontal %6.0f, vertical %6.0f\n",
				m, pref, l.hor, l.ver)
		}
	}

	// Quantify the discipline: with preferences on, the share of
	// wirelength routed in each layer's preferred direction should rise.
	fmt.Println("\nwith preferred directions, wrong-direction wirelength is paid 4x,")
	fmt.Println("so the router shifts long runs onto matching layers via extra vias.")
}
