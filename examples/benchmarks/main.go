// Benchmarks: route the synthetic equivalents of the paper's Table 4
// public benchmarks (rt1..rt5, ind1..ind3) with every router in the repo
// and print a comparison table, optionally loading a trained model.
//
// Run from the repository root:
//
//	go run ./examples/benchmarks                      # small benchmarks, quick-trained selector
//	go run ./examples/benchmarks -model selector.gob  # with a trained model
//	go run ./examples/benchmarks -all                 # all eight benchmarks (slow)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"oarsmt"
)

func main() {
	log.SetFlags(0)
	modelPath := flag.String("model", "", "trained selector model (optional)")
	all := flag.Bool("all", false, "run all eight benchmarks (rt3..rt5 are large and slow)")
	flag.Parse()

	var sel *oarsmt.Selector
	var err error
	if *modelPath != "" {
		sel, err = oarsmt.LoadModel(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded model %s\n", *modelPath)
	} else {
		fmt.Println("no -model given: using the embedded pretrained selector")
		sel, err = oarsmt.PretrainedSelector()
		if err != nil {
			log.Fatal(err)
		}
	}
	router := oarsmt.NewRouter(sel)

	names := []string{"rt1", "ind1", "ind2"}
	if *all {
		names = []string{"rt1", "rt2", "rt3", "rt4", "rt5", "ind1", "ind2", "ind3"}
	}

	fmt.Printf("%-6s %14s %14s %14s %14s %10s\n",
		"case", "[12] Lin08", "[16] Liu14", "[14] Lin18", "ours", "ours time")
	for _, name := range names {
		in, err := oarsmt.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		c08 := mustRoute(in, oarsmt.Lin08)
		c16 := mustRoute(in, oarsmt.Liu14)
		c14 := mustRoute(in, oarsmt.Lin18)
		start := time.Now()
		res, err := router.Route(context.Background(), in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %14.0f %14.0f %14.0f %14.0f %10v\n",
			name, c08, c16, c14, res.Tree.Cost, time.Since(start).Round(time.Millisecond))
	}
}

func mustRoute(in *oarsmt.Instance, alg oarsmt.BaselineAlgorithm) float64 {
	tree, err := oarsmt.RouteBaseline(alg, in)
	if err != nil {
		log.Fatal(err)
	}
	return tree.Cost
}
