// Training: run the full combinatorial-MCTS training pipeline end to end —
// curriculum, mixed sizes, augmentation — while tracking the ST-to-MST
// ratio on a held-out evaluation set, then save and reload the model.
//
// This is the paper's Fig 8 selector-evolution loop in miniature: each
// stage generates labels with MCTS under the *current* selector (so actor
// and critic improve together), fits the selector, and the evaluation
// shows whether the selected Steiner points actually shorten trees.
//
// Run from the repository root:
//
//	go run ./examples/training
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"oarsmt"
)

func main() {
	log.SetFlags(0)

	sel, err := oarsmt.NewSelector(11, oarsmt.UNetConfig{
		InChannels: 7, Base: 4, Depth: 2, Kernel: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Held-out evaluation layouts (never trained on).
	var evalSet []*oarsmt.Instance
	for seed := int64(100); seed < 108; seed++ {
		in, err := oarsmt.RandomInstance(seed, oarsmt.RandomSpec{
			H: 10, V: 10, MinM: 2, MaxM: 2,
			MinPins: 4, MaxPins: 6,
			MinObstacles: 8, MaxObstacles: 16,
		})
		if err != nil {
			log.Fatal(err)
		}
		evalSet = append(evalSet, in)
	}

	evaluate := func() float64 {
		// Unguarded ratio: below 1.0 means the learned Steiner points
		// genuinely shorten the tree versus the plain spanning tree.
		r := &oarsmt.Router{Selector: sel, Mode: oarsmt.OneShot, GuardedAcceptance: false}
		sum := 0.0
		for _, in := range evalSet {
			ratio, err := r.STtoMSTRatio(context.Background(), in)
			if err != nil {
				log.Fatal(err)
			}
			sum += ratio
		}
		return sum / float64(len(evalSet))
	}

	fmt.Printf("before training: ST-to-MST ratio %.4f (1.0 = no benefit)\n", evaluate())

	cfg := oarsmt.TrainConfig{
		LayoutsPerSize:   4,
		MinPins:          3,
		MaxPins:          6,
		CurriculumStages: 2, // pins fixed at 3 then 6, critic off (paper §3.6)
		MCTS:             oarsmt.MCTSConfig{Iterations: 16, UseCritic: true},
		Augment:          true,
		BatchSize:        32,
		EpochsPerStage:   2,
		LR:               2e-3,
		Seed:             11,
	}
	for stage := 1; stage <= 4; stage++ {
		if err := oarsmt.Train(sel, cfg, 1); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after stage %d: ST-to-MST ratio %.4f\n", stage, evaluate())
	}

	// Persist and reload.
	path := filepath.Join(os.TempDir(), "oarsmt-example-selector.gob")
	if err := oarsmt.SaveModel(sel, path); err != nil {
		log.Fatal(err)
	}
	loaded, err := oarsmt.LoadModel(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model saved to %s and reloaded (%d parameters)\n", path, loaded.Net.NumParams())

	// Route one held-out layout with the trained model and show the tree.
	router := oarsmt.NewRouter(loaded)
	res, err := router.Route(context.Background(), evalSet[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed eval layout: cost %.0f, %d Steiner points kept, guard used Steiner tree: %v\n",
		res.Tree.Cost, len(res.SteinerPoints), res.UsedSteiner)

	fmt.Println()
	fmt.Println("note: at this demo budget (dozens of episodes) the ratio hovers near 1.0 —")
	fmt.Println("the selections are cost-neutral and get pruned. The shipped model in")
	fmt.Println("internal/models was trained with cmd/oarsmt-train at ~1000 episodes and")
	fmt.Println("alpha up to 1024; the paper used ~384000 episodes at alpha 2000.")
}
