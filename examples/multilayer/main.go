// Multilayer: build a geometric multi-layer layout the way an EDA flow
// would — pins and rectangular blockages in original coordinates — convert
// it to a 3-D Hanan grid graph, and compare the algorithmic routers on it.
//
// This exercises the Hanan construction of paper §2.2: cuts appear only at
// pin coordinates and obstacle boundaries, so the graph is much smaller
// than the uniform grid, and edge costs carry the original geometric
// distances.
//
// Run from the repository root:
//
//	go run ./examples/multilayer
package main

import (
	"context"
	"fmt"
	"log"

	"oarsmt"
)

func main() {
	log.SetFlags(0)

	// A 1000x1000 die with four routing layers: a clock-tree-like net with
	// nine pins spread across layers 0-2, a large macro on layer 0, two
	// routing blockages on layer 1, and a pre-routed power strap modelled
	// as a thin blockage on layer 2.
	l := &oarsmt.Layout{
		Name:    "macro-demo",
		Layers:  4,
		ViaCost: 4,
		Pins: []oarsmt.Point{
			{X: 50, Y: 50, Layer: 0},
			{X: 950, Y: 80, Layer: 0},
			{X: 120, Y: 900, Layer: 0},
			{X: 900, Y: 930, Layer: 1},
			{X: 500, Y: 40, Layer: 1},
			{X: 60, Y: 500, Layer: 2},
			{X: 940, Y: 520, Layer: 2},
			{X: 520, Y: 960, Layer: 0},
			{X: 480, Y: 480, Layer: 2},
		},
		Obstacles: []oarsmt.Rect{
			// Macro: a 400x360 block in the middle of layer 0.
			{X1: 300, Y1: 320, X2: 700, Y2: 680, Layer: 0},
			// Routing blockages on layer 1.
			{X1: 100, Y1: 600, X2: 450, Y2: 700, Layer: 1},
			{X1: 600, Y1: 150, X2: 800, Y2: 260, Layer: 1},
			// Power strap on layer 2: full-width, thin.
			{X1: 0, Y1: 740, X2: 1000, Y2: 760, Layer: 2},
		},
	}
	if err := l.Validate(); err != nil {
		log.Fatal(err)
	}
	in, err := l.Instance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hanan graph: %dx%dx%d (%d vertices) from a 1000x1000 die — cuts only at pins and obstacle edges\n",
		in.Graph.H, in.Graph.V, in.Graph.M, in.Graph.NumVertices())
	fmt.Printf("blocked vertices: %d, pins: %d\n", in.Graph.NumBlocked(), in.NumPins())

	for _, alg := range []struct {
		name string
		a    oarsmt.BaselineAlgorithm
	}{
		{"Lin08 [12] (spanning graph)", oarsmt.Lin08},
		{"Liu14 [16] (geometric reduction)", oarsmt.Liu14},
		{"Lin18 [14] (bounded maze + retrace)", oarsmt.Lin18},
	} {
		tree, err := oarsmt.RouteBaseline(alg.a, in)
		if err != nil {
			log.Fatal(err)
		}
		hor, ver, via := tree.WirelengthByAxis(in.Graph)
		fmt.Printf("%-36s cost %6.0f  (h %5.0f, v %5.0f, via %3.0f)\n",
			alg.name, tree.Cost, hor, ver, via)
	}

	// The plain OARMST for reference.
	mst, err := oarsmt.PlainOARMST(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-36s cost %6.0f\n", "plain OARMST", mst.Cost)

	// Where do the routers place vias? Count layer usage of the best tree.
	best, err := oarsmt.RouteBaseline(oarsmt.Lin18, in)
	if err != nil {
		log.Fatal(err)
	}
	layerUse := map[int]int{}
	for _, e := range best.Edges {
		layerUse[in.Graph.CoordOf(e.A).M]++
	}
	fmt.Print("Lin18 layer usage (edges touching each layer):")
	for m := 0; m < in.Graph.M; m++ {
		fmt.Printf("  L%d=%d", m, layerUse[m])
	}
	fmt.Println()
}
