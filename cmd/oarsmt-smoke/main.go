// oarsmt-smoke is the serving smoke test driven by `make serve-smoke`: it
// starts an oarsmt-serve daemon on a free port, waits for /healthz, routes
// one layout (twice — the repeat must be a cache hit), reads /stats, then
// sends SIGTERM and verifies the daemon drains and exits 0.
//
// With -store-dir it instead runs the warm-restart smoke driven by
// `make store-smoke`: route through a store-backed daemon, SIGKILL it (no
// drain — the segments on disk are all that survives), restart it over the
// same directory, and verify the same layout comes back as a store hit with
// a bit-identical tree and zero selector inferences.
//
// Usage:
//
//	oarsmt-smoke -bin bin/oarsmt-serve
//	oarsmt-smoke -bin bin/oarsmt-serve -store-dir /tmp/routes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"syscall"
	"time"

	"oarsmt/internal/serve"
)

const smokeLayout = `{"name":"smoke","grid":{"h":6,"v":6,"m":2,"viaCost":2,` +
	`"dx":[1,1,1,1,1],"dy":[1,1,1,1,1],"blocked":[14,15,50],"pins":[0,5,35,70]}}`

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-smoke: ")
	bin := flag.String("bin", "bin/oarsmt-serve", "oarsmt-serve binary to exercise")
	storeDir := flag.String("store-dir", "", "run the warm-restart smoke over this route-store directory")
	flag.Parse()
	err := run(*bin)
	if err == nil && *storeDir != "" {
		err = runStore(*bin, *storeDir)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

// daemon is one child oarsmt-serve process.
type daemon struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	exited chan error
}

// startDaemon launches the binary on a free port with the extra args and
// waits for /healthz.
func startDaemon(bin string, extra ...string) (*daemon, error) {
	addr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	args := append([]string{"-addr", addr, "-queue", "16", "-timeout", "30s"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	d := &daemon{cmd: cmd, base: "http://" + addr, exited: make(chan error, 1)}
	//oarsmt:allow rawgo(smoke-test plumbing: waits on the child daemon process, no routing state involved)
	go func() { d.exited <- cmd.Wait() }()
	if err := waitHealthy(d.base, d.exited); err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	return d, nil
}

// drain SIGTERMs the daemon and requires a clean exit.
func (d *daemon) drain() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	select {
	case err := <-d.exited:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		return fmt.Errorf("daemon did not exit within 60s of SIGTERM")
	}
	return nil
}

// kill SIGKILLs the daemon — the crash half of the warm-restart smoke.
func (d *daemon) kill() error {
	if err := d.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	select {
	case <-d.exited:
	case <-time.After(60 * time.Second):
		return fmt.Errorf("daemon survived SIGKILL for 60s")
	}
	return nil
}

func (d *daemon) stats() (*serve.Stats, error) {
	res, err := http.Get(d.base + "/stats")
	if err != nil {
		return nil, fmt.Errorf("GET /stats: %w", err)
	}
	defer res.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decode /stats: %w", err)
	}
	return &st, nil
}

func run(bin string) error {
	d, err := startDaemon(bin)
	if err != nil {
		return err
	}
	defer d.cmd.Process.Kill()

	first, err := routeOnce(d.base)
	if err != nil {
		return err
	}
	if first.Cost <= 0 || first.NumEdges == 0 {
		return fmt.Errorf("degenerate route response: %+v", first)
	}
	log.Printf("routed %q: cost %v, %d edges", first.Name, first.Cost, first.NumEdges)

	second, err := routeOnce(d.base)
	if err != nil {
		return err
	}
	if !second.CacheHit {
		return fmt.Errorf("repeat request was not a cache hit")
	}
	if second.Cost != first.Cost {
		return fmt.Errorf("cached cost %v differs from first %v", second.Cost, first.Cost)
	}

	st, err := d.stats()
	if err != nil {
		return err
	}
	if st.Completed < 2 || st.CacheHits < 1 {
		return fmt.Errorf("implausible stats after two routes: %+v", st)
	}
	log.Printf("stats: %d completed, %d cache hits, %d inferences", st.Completed, st.CacheHits, st.Inferences)

	// Graceful drain: SIGTERM must make the daemon exit 0.
	return d.drain()
}

// runStore is the warm-restart smoke: route → SIGKILL → restart over the
// same -store-dir → the same layout is a store hit, bit-identical, with
// zero selector inferences.
func runStore(bin, dir string) error {
	cold, err := startDaemon(bin, "-store-dir", dir, "-store-flush", "1")
	if err != nil {
		return err
	}
	defer cold.cmd.Process.Kill()

	first, err := routeOnce(cold.base)
	if err != nil {
		return err
	}
	if first.StoreHit {
		return fmt.Errorf("first routing reported a store hit")
	}
	// A SIGKILL gives the daemon no chance to flush, so wait for the
	// background flusher to land the route in a segment before pulling the
	// plug — the write is what the restart serves from.
	if err := waitStoreWrites(cold); err != nil {
		return err
	}
	log.Printf("cold route: cost %v, %d edges; SIGKILL", first.Cost, first.NumEdges)
	if err := cold.kill(); err != nil {
		return err
	}

	warm, err := startDaemon(bin, "-store-dir", dir)
	if err != nil {
		return err
	}
	defer warm.cmd.Process.Kill()

	second, err := routeOnce(warm.base)
	if err != nil {
		return err
	}
	if !second.StoreHit || !second.CacheHit {
		return fmt.Errorf("post-restart route missed the store: %+v", second)
	}
	if second.Cost != first.Cost {
		return fmt.Errorf("warm cost %v differs from cold cost %v", second.Cost, first.Cost)
	}
	if !reflect.DeepEqual(second.Edges, first.Edges) {
		return fmt.Errorf("warm tree differs from cold tree")
	}
	st, err := warm.stats()
	if err != nil {
		return err
	}
	if st.Inferences != 0 {
		return fmt.Errorf("warm restart spent %d selector inferences, want 0", st.Inferences)
	}
	if st.StoreServed < 1 || st.StoreEntries < 1 {
		return fmt.Errorf("implausible warm stats: %+v", st)
	}
	log.Printf("warm route: store hit, bit-identical, 0 inferences (%d entries, %d segments)",
		st.StoreEntries, st.StoreSegments)
	return warm.drain()
}

// waitStoreWrites polls /stats until the background flusher has landed at
// least one segment write (same bounded backoff as waitHealthy).
func waitStoreWrites(d *daemon) error {
	delay := 10 * time.Millisecond
	for i := 0; i < 40; i++ {
		st, err := d.stats()
		if err != nil {
			return err
		}
		if st.StoreWrites > 0 {
			return nil
		}
		time.Sleep(delay)
		if delay *= 2; delay > 640*time.Millisecond {
			delay = 640 * time.Millisecond
		}
	}
	return fmt.Errorf("store write did not land before the kill")
}

// freeAddr reserves then releases a loopback port; the tiny reuse race is
// acceptable for a smoke test.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// waitHealthy polls /healthz with a bounded, deterministic exponential
// backoff (10ms doubling to a 640ms cap, 40 attempts ≈ 24s worst case)
// instead of a wall-clock deadline, so the startup race between the child
// daemon binding its port and the first probe resolves the same way on a
// loaded CI box as on a fast laptop. A connection refused while the child
// is still booting is expected; the last error is reported if the budget
// runs out, and the whole smoke test exits non-zero.
func waitHealthy(base string, exited <-chan error) error {
	const (
		attempts   = 40
		backoff0   = 10 * time.Millisecond
		backoffCap = 640 * time.Millisecond
	)
	delay := backoff0
	var lastErr error
	for i := 0; i < attempts; i++ {
		select {
		case err := <-exited:
			return fmt.Errorf("daemon exited before becoming healthy: %v", err)
		default:
		}
		res, err := http.Get(base + "/healthz")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("/healthz = %d", res.StatusCode)
		}
		lastErr = err
		time.Sleep(delay)
		if delay *= 2; delay > backoffCap {
			delay = backoffCap
		}
	}
	return fmt.Errorf("/healthz not ready after %d probes (last err: %v)", attempts, lastErr)
}

func routeOnce(base string) (*serve.Response, error) {
	res, err := http.Post(base+"/route?edges=1", "application/json", strings.NewReader(smokeLayout))
	if err != nil {
		return nil, fmt.Errorf("POST /route: %w", err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(res.Body).Decode(&e)
		return nil, fmt.Errorf("POST /route = %d: %s", res.StatusCode, e["error"])
	}
	var resp serve.Response
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
