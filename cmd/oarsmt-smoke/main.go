// oarsmt-smoke is the serving smoke test driven by `make serve-smoke`: it
// starts an oarsmt-serve daemon on a free port, waits for health, routes
// one layout (twice — the repeat must be a cache hit), reads the stats,
// then sends SIGTERM and verifies the daemon drains and exits 0. All
// traffic goes through the public client package; the smoke is also the
// end-to-end proof that the typed wire protocol round-trips.
//
// With -store-dir it instead runs the warm-restart smoke driven by
// `make store-smoke`: route through a store-backed daemon, SIGKILL it (no
// drain — the segments on disk are all that survives), restart it over the
// same directory, and verify the same layout comes back as a store hit with
// a bit-identical tree and zero selector inferences.
//
// With -cluster N it runs the cluster smoke driven by `make cluster-smoke`:
// a coordinator plus N registered workers, verifying shard affinity (a
// repeated layout hits the same worker's cache), spread (distinct layouts
// reach more than one worker), graceful drain (a SIGTERM'd worker exits
// cleanly while concurrent requests all succeed), and — when -loadgen is
// given — a throughput/latency curve written by oarsmt-loadgen.
//
// Usage:
//
//	oarsmt-smoke -bin bin/oarsmt-serve
//	oarsmt-smoke -bin bin/oarsmt-serve -store-dir /tmp/routes
//	oarsmt-smoke -bin bin/oarsmt-serve -cluster 3 -loadgen bin/oarsmt-loadgen -bench BENCH_cluster.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"reflect"
	"sync"
	"syscall"
	"time"

	"oarsmt/client"
	"oarsmt/wire"
)

const smokeLayout = `{"name":"smoke","grid":{"h":6,"v":6,"m":2,"viaCost":2,` +
	`"dx":[1,1,1,1,1],"dy":[1,1,1,1,1],"blocked":[14,15,50],"pins":[0,5,35,70]}}`

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-smoke: ")
	bin := flag.String("bin", "bin/oarsmt-serve", "oarsmt-serve binary to exercise")
	storeDir := flag.String("store-dir", "", "run the warm-restart smoke over this route-store directory")
	clusterN := flag.Int("cluster", 0, "run the cluster smoke with this many workers")
	loadgen := flag.String("loadgen", "", "oarsmt-loadgen binary for the cluster throughput curve")
	bench := flag.String("bench", "", "throughput/latency report path (cluster smoke)")
	flag.Parse()
	var err error
	switch {
	case *clusterN > 0:
		err = runCluster(*bin, *clusterN, *loadgen, *bench)
	default:
		err = run(*bin)
		if err == nil && *storeDir != "" {
			err = runStore(*bin, *storeDir)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

// daemon is one child oarsmt-serve process and the client bound to it.
type daemon struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	cl     *client.Client
	exited chan error
}

// startDaemon launches the binary on a free port with the extra args and
// waits for health.
func startDaemon(bin string, extra ...string) (*daemon, error) {
	addr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	args := append([]string{"-addr", addr, "-queue", "16", "-timeout", "30s"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	cl, err := client.New(client.Config{BaseURL: "http://" + addr, Timeout: 60 * time.Second})
	if err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	d := &daemon{cmd: cmd, base: "http://" + addr, cl: cl, exited: make(chan error, 1)}
	//oarsmt:allow rawgo(smoke-test plumbing: waits on the child daemon process, no routing state involved)
	go func() { d.exited <- cmd.Wait() }()
	if err := waitHealthy(d.cl, d.exited); err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	return d, nil
}

// drain SIGTERMs the daemon and requires a clean exit.
func (d *daemon) drain() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	select {
	case err := <-d.exited:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		return fmt.Errorf("daemon did not exit within 60s of SIGTERM")
	}
	return nil
}

// kill SIGKILLs the daemon — the crash half of the warm-restart smoke.
func (d *daemon) kill() error {
	if err := d.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	select {
	case <-d.exited:
	case <-time.After(60 * time.Second):
		return fmt.Errorf("daemon survived SIGKILL for 60s")
	}
	return nil
}

func run(bin string) error {
	d, err := startDaemon(bin)
	if err != nil {
		return err
	}
	defer d.cmd.Process.Kill()

	first, err := routeOnce(d.cl)
	if err != nil {
		return err
	}
	if first.Cost <= 0 || first.NumEdges == 0 {
		return fmt.Errorf("degenerate route response: %+v", first)
	}
	log.Printf("routed %q: cost %v, %d edges", first.Name, first.Cost, first.NumEdges)

	second, err := routeOnce(d.cl)
	if err != nil {
		return err
	}
	if !second.CacheHit {
		return fmt.Errorf("repeat request was not a cache hit")
	}
	if second.Cost != first.Cost {
		return fmt.Errorf("cached cost %v differs from first %v", second.Cost, first.Cost)
	}

	st, err := d.cl.Stats(context.Background())
	if err != nil {
		return err
	}
	if st.Completed < 2 || st.CacheHits < 1 {
		return fmt.Errorf("implausible stats after two routes: %+v", st)
	}
	log.Printf("stats: %d completed, %d cache hits, %d inferences", st.Completed, st.CacheHits, st.Inferences)

	// Graceful drain: SIGTERM must make the daemon exit 0.
	return d.drain()
}

// runStore is the warm-restart smoke: route → SIGKILL → restart over the
// same -store-dir → the same layout is a store hit, bit-identical, with
// zero selector inferences.
func runStore(bin, dir string) error {
	cold, err := startDaemon(bin, "-store-dir", dir, "-store-flush", "1")
	if err != nil {
		return err
	}
	defer cold.cmd.Process.Kill()

	first, err := routeOnce(cold.cl)
	if err != nil {
		return err
	}
	if first.StoreHit {
		return fmt.Errorf("first routing reported a store hit")
	}
	// A SIGKILL gives the daemon no chance to flush, so wait for the
	// background flusher to land the route in a segment before pulling the
	// plug — the write is what the restart serves from.
	if err := waitStoreWrites(cold); err != nil {
		return err
	}
	log.Printf("cold route: cost %v, %d edges; SIGKILL", first.Cost, first.NumEdges)
	if err := cold.kill(); err != nil {
		return err
	}

	warm, err := startDaemon(bin, "-store-dir", dir)
	if err != nil {
		return err
	}
	defer warm.cmd.Process.Kill()

	second, err := routeOnce(warm.cl)
	if err != nil {
		return err
	}
	if !second.StoreHit || !second.CacheHit {
		return fmt.Errorf("post-restart route missed the store: %+v", second)
	}
	if second.Cost != first.Cost {
		return fmt.Errorf("warm cost %v differs from cold cost %v", second.Cost, first.Cost)
	}
	if !reflect.DeepEqual(second.Edges, first.Edges) {
		return fmt.Errorf("warm tree differs from cold tree")
	}
	st, err := warm.cl.Stats(context.Background())
	if err != nil {
		return err
	}
	if st.Inferences != 0 {
		return fmt.Errorf("warm restart spent %d selector inferences, want 0", st.Inferences)
	}
	if st.StoreServed < 1 || st.StoreEntries < 1 {
		return fmt.Errorf("implausible warm stats: %+v", st)
	}
	log.Printf("warm route: store hit, bit-identical, 0 inferences (%d entries, %d segments)",
		st.StoreEntries, st.StoreSegments)
	return warm.drain()
}

// runCluster is the cluster smoke: coordinator + n workers, shard
// affinity, spread, graceful worker drain under fire, and (optionally)
// the loadgen throughput curve.
func runCluster(bin string, n int, loadgenBin, benchPath string) error {
	ctx := context.Background()
	coord, err := startDaemon(bin, "-coordinator", "-lease-ttl", "5s", "-hedge-delay", "150ms")
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	defer coord.cmd.Process.Kill()

	workers := make(map[string]*daemon, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("w%d", i)
		w, err := startDaemon(bin, "-register", coord.base, "-worker-id", id)
		if err != nil {
			return fmt.Errorf("worker %s: %w", id, err)
		}
		defer w.cmd.Process.Kill()
		workers[id] = w
	}
	if err := waitWorkers(coord.cl, n); err != nil {
		return err
	}
	log.Printf("cluster up: coordinator %s, %d workers", coord.base, n)

	// Shard affinity: the same layout must route to the same worker and
	// the repeat must be that worker's cache hit.
	first, err := routeOnce(coord.cl)
	if err != nil {
		return err
	}
	if first.Worker == "" {
		return fmt.Errorf("coordinator response carries no worker id: %+v", first)
	}
	second, err := routeOnce(coord.cl)
	if err != nil {
		return err
	}
	if second.Worker != first.Worker {
		return fmt.Errorf("repeat request moved shards: %q then %q", first.Worker, second.Worker)
	}
	if !second.CacheHit {
		return fmt.Errorf("repeat request on shard %q was not a cache hit", second.Worker)
	}
	if second.Cost != first.Cost {
		return fmt.Errorf("cached cost %v differs from first %v", second.Cost, first.Cost)
	}
	log.Printf("affinity: layout pinned to %q, repeat was its cache hit", first.Worker)

	// Spread: distinct layouts must reach more than one worker. With 64
	// virtual nodes per worker, twelve distinct keys all landing on one
	// of three shards is vanishingly unlikely.
	served := map[string]bool{first.Worker: true}
	for i := 0; i < 12 && len(served) < 2; i++ {
		resp, err := coord.cl.RouteJSON(ctx, []byte(variantLayout(i)), nil)
		if err != nil {
			return fmt.Errorf("spread layout %d: %w", i, err)
		}
		served[resp.Worker] = true
	}
	if len(served) < 2 {
		return fmt.Errorf("12 distinct layouts all routed to one worker")
	}
	log.Printf("spread: distinct layouts reached %d workers", len(served))

	// Graceful drain under fire: SIGTERM the shard that owns the smoke
	// layout while concurrent requests are in flight through the
	// coordinator; every request must succeed (the drained shard
	// finishes its in-flight work, later ones move shards).
	victim := workers[first.Worker]
	if victim == nil {
		return fmt.Errorf("response worker %q is not one of ours", first.Worker)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		//oarsmt:allow rawgo(smoke-test plumbing: concurrent requests during the drain, joined below)
		go func() {
			defer wg.Done()
			if _, err := routeOnce(coord.cl); err != nil {
				errc <- err
			}
		}()
	}
	if err := victim.drain(); err != nil {
		return fmt.Errorf("draining worker %q: %w", first.Worker, err)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return fmt.Errorf("request dropped during drain of %q: %w", first.Worker, err)
	}
	moved, err := routeOnce(coord.cl)
	if err != nil {
		return err
	}
	if moved.Worker == first.Worker {
		return fmt.Errorf("layout still routed to drained worker %q", first.Worker)
	}
	log.Printf("drain: %q exited 0 with no dropped requests; layout moved to %q", first.Worker, moved.Worker)

	cst, err := coord.cl.ClusterStats(ctx)
	if err != nil {
		return err
	}
	if cst.Drained < 1 || cst.Completed < 10 {
		return fmt.Errorf("implausible cluster stats: %+v", cst)
	}
	log.Printf("cluster stats: %d forwards, %d completed, %d hedges (%d wins), %d drained",
		cst.Forwards, cst.Completed, cst.Hedges, cst.HedgeWins, cst.Drained)

	if loadgenBin != "" {
		args := []string{"-url", coord.base, "-duration", "3s", "-sweep", "1,2,4", "-layouts", "8", "-warm"}
		if benchPath != "" {
			args = append(args, "-json", benchPath)
		}
		lg := exec.Command(loadgenBin, args...)
		lg.Stdout = os.Stderr
		lg.Stderr = os.Stderr
		if err := lg.Run(); err != nil {
			return fmt.Errorf("loadgen: %w", err)
		}
	}

	// Tear down the rest of the fleet gracefully.
	for id, w := range workers {
		if id == first.Worker {
			continue
		}
		if err := w.drain(); err != nil {
			return fmt.Errorf("draining worker %q: %w", id, err)
		}
	}
	return coord.drain()
}

// variantLayout perturbs the smoke layout's pins so each variant has a
// distinct canonical hash (and therefore its own shard placement).
func variantLayout(i int) string {
	return fmt.Sprintf(`{"name":"v%d","grid":{"h":6,"v":6,"m":2,"viaCost":2,`+
		`"dx":[1,1,1,1,1],"dy":[1,1,1,1,1],"blocked":[14,15,50],"pins":[%d,5,35,70]}}`, i, i+20)
}

// waitWorkers polls the coordinator until n workers are registered.
func waitWorkers(cl *client.Client, n int) error {
	delay := 10 * time.Millisecond
	for i := 0; i < 40; i++ {
		st, err := cl.ClusterStats(context.Background())
		if err == nil && len(st.Workers) >= n {
			return nil
		}
		time.Sleep(delay)
		if delay *= 2; delay > 640*time.Millisecond {
			delay = 640 * time.Millisecond
		}
	}
	return fmt.Errorf("%d workers did not register", n)
}

// waitStoreWrites polls the stats until the background flusher has landed
// at least one segment write (same bounded backoff as waitHealthy).
func waitStoreWrites(d *daemon) error {
	delay := 10 * time.Millisecond
	for i := 0; i < 40; i++ {
		st, err := d.cl.Stats(context.Background())
		if err != nil {
			return err
		}
		if st.StoreWrites > 0 {
			return nil
		}
		time.Sleep(delay)
		if delay *= 2; delay > 640*time.Millisecond {
			delay = 640 * time.Millisecond
		}
	}
	return fmt.Errorf("store write did not land before the kill")
}

// freeAddr reserves then releases a loopback port; the tiny reuse race is
// acceptable for a smoke test.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// waitHealthy polls health with a bounded, deterministic exponential
// backoff (10ms doubling to a 640ms cap, 40 attempts ≈ 24s worst case)
// instead of a wall-clock deadline, so the startup race between the child
// daemon binding its port and the first probe resolves the same way on a
// loaded CI box as on a fast laptop. A connection refused while the child
// is still booting is expected; the last error is reported if the budget
// runs out, and the whole smoke test exits non-zero.
func waitHealthy(cl *client.Client, exited <-chan error) error {
	const (
		attempts   = 40
		backoff0   = 10 * time.Millisecond
		backoffCap = 640 * time.Millisecond
	)
	delay := backoff0
	var lastErr error
	for i := 0; i < attempts; i++ {
		select {
		case err := <-exited:
			return fmt.Errorf("daemon exited before becoming healthy: %v", err)
		default:
		}
		if err := cl.Healthz(context.Background()); err == nil {
			return nil
		} else {
			lastErr = err
		}
		time.Sleep(delay)
		if delay *= 2; delay > backoffCap {
			delay = backoffCap
		}
	}
	return fmt.Errorf("health not ready after %d probes (last err: %v)", attempts, lastErr)
}

func routeOnce(cl *client.Client) (*wire.RouteResponse, error) {
	resp, err := cl.RouteJSON(context.Background(), []byte(smokeLayout), &client.RouteOptions{Edges: true})
	if err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	return resp, nil
}
