// oarsmt-smoke is the serving smoke test driven by `make serve-smoke`: it
// starts an oarsmt-serve daemon on a free port, waits for /healthz, routes
// one layout (twice — the repeat must be a cache hit), reads /stats, then
// sends SIGTERM and verifies the daemon drains and exits 0.
//
// Usage:
//
//	oarsmt-smoke -bin bin/oarsmt-serve
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"oarsmt/internal/serve"
)

const smokeLayout = `{"name":"smoke","grid":{"h":6,"v":6,"m":2,"viaCost":2,` +
	`"dx":[1,1,1,1,1],"dy":[1,1,1,1,1],"blocked":[14,15,50],"pins":[0,5,35,70]}}`

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-smoke: ")
	bin := flag.String("bin", "bin/oarsmt-serve", "oarsmt-serve binary to exercise")
	flag.Parse()
	if err := run(*bin); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

func run(bin string) error {
	addr, err := freeAddr()
	if err != nil {
		return err
	}
	cmd := exec.Command(bin, "-addr", addr, "-queue", "16", "-timeout", "30s")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", bin, err)
	}
	exited := make(chan error, 1)
	//oarsmt:allow rawgo(smoke-test plumbing: waits on the child daemon process, no routing state involved)
	go func() { exited <- cmd.Wait() }()
	defer cmd.Process.Kill()

	base := "http://" + addr
	if err := waitHealthy(base, exited); err != nil {
		return err
	}

	first, err := routeOnce(base)
	if err != nil {
		return err
	}
	if first.Cost <= 0 || first.NumEdges == 0 {
		return fmt.Errorf("degenerate route response: %+v", first)
	}
	log.Printf("routed %q: cost %v, %d edges", first.Name, first.Cost, first.NumEdges)

	second, err := routeOnce(base)
	if err != nil {
		return err
	}
	if !second.CacheHit {
		return fmt.Errorf("repeat request was not a cache hit")
	}
	if second.Cost != first.Cost {
		return fmt.Errorf("cached cost %v differs from first %v", second.Cost, first.Cost)
	}

	res, err := http.Get(base + "/stats")
	if err != nil {
		return fmt.Errorf("GET /stats: %w", err)
	}
	var st serve.Stats
	err = json.NewDecoder(res.Body).Decode(&st)
	res.Body.Close()
	if err != nil {
		return fmt.Errorf("decode /stats: %w", err)
	}
	if st.Completed < 2 || st.CacheHits < 1 {
		return fmt.Errorf("implausible stats after two routes: %+v", st)
	}
	log.Printf("stats: %d completed, %d cache hits, %d inferences", st.Completed, st.CacheHits, st.Inferences)

	// Graceful drain: SIGTERM must make the daemon exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		return fmt.Errorf("daemon did not exit within 60s of SIGTERM")
	}
	return nil
}

// freeAddr reserves then releases a loopback port; the tiny reuse race is
// acceptable for a smoke test.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// waitHealthy polls /healthz with a bounded, deterministic exponential
// backoff (10ms doubling to a 640ms cap, 40 attempts ≈ 24s worst case)
// instead of a wall-clock deadline, so the startup race between the child
// daemon binding its port and the first probe resolves the same way on a
// loaded CI box as on a fast laptop. A connection refused while the child
// is still booting is expected; the last error is reported if the budget
// runs out, and the whole smoke test exits non-zero.
func waitHealthy(base string, exited <-chan error) error {
	const (
		attempts   = 40
		backoff0   = 10 * time.Millisecond
		backoffCap = 640 * time.Millisecond
	)
	delay := backoff0
	var lastErr error
	for i := 0; i < attempts; i++ {
		select {
		case err := <-exited:
			return fmt.Errorf("daemon exited before becoming healthy: %v", err)
		default:
		}
		res, err := http.Get(base + "/healthz")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("/healthz = %d", res.StatusCode)
		}
		lastErr = err
		time.Sleep(delay)
		if delay *= 2; delay > backoffCap {
			delay = backoffCap
		}
	}
	return fmt.Errorf("/healthz not ready after %d probes (last err: %v)", attempts, lastErr)
}

func routeOnce(base string) (*serve.Response, error) {
	res, err := http.Post(base+"/route", "application/json", strings.NewReader(smokeLayout))
	if err != nil {
		return nil, fmt.Errorf("POST /route: %w", err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(res.Body).Decode(&e)
		return nil, fmt.Errorf("POST /route = %d: %s", res.StatusCode, e["error"])
	}
	var resp serve.Response
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
