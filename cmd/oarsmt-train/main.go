// oarsmt-train trains a Steiner-point selector with the combinatorial-MCTS
// pipeline (paper §3.5-3.6) and saves the model.
//
// Usage:
//
//	oarsmt-train -o selector.gob -stages 6 -hv 8,12 -layers 2 \
//	    -layouts 3 -alpha 16 -base 6 -depth 2
//
// The defaults train a compact CPU-scale model in a few minutes. The
// paper-scale schedule (-paper) uses the 12 mixed sizes of §3.6 and the
// full curriculum; expect it to run for a very long time on a CPU.
//
// With -ckpt-dir the trainer writes a crash-safe checksummed checkpoint
// (model + optimizer + RNG state) after every stage; after a crash or
// SIGKILL, rerunning with -resume and the same flags continues from the
// newest intact checkpoint and produces a bit-identical final model:
//
//	oarsmt-train -o selector.gob -stages 8 -ckpt-dir ckpts   # killed at stage 5
//	oarsmt-train -o selector.gob -stages 8 -ckpt-dir ckpts -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"math/rand"
	"oarsmt/internal/layout"
	"oarsmt/internal/mcts"
	"oarsmt/internal/nn"
	"oarsmt/internal/obs"
	"oarsmt/internal/parallel"
	"oarsmt/internal/rl"
	"oarsmt/internal/selector"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-train: ")

	var (
		out      = flag.String("o", "selector.gob", "output model path")
		from     = flag.String("from", "", "existing model to continue training (fresh optimizer/RNG)")
		resume   = flag.Bool("resume", false, "resume bit-identically from the newest checkpoint in -ckpt-dir")
		ckptDir  = flag.String("ckpt-dir", "", "write a crash-safe checkpoint here after every stage")
		ckptKeep = flag.Int("ckpt-keep", 3, "checkpoints to retain in -ckpt-dir (0 = all)")
		stages   = flag.Int("stages", 6, "training stages (paper: 32)")
		hvList   = flag.String("hv", "8,12", "comma-separated H=V sizes (paper: 16,24,32)")
		mList    = flag.String("layers", "2", "comma-separated layer counts (paper: 4,6,8,10)")
		layouts  = flag.Int("layouts", 3, "layouts per size per stage (paper: 1000)")
		alpha    = flag.Int("alpha", 16, "MCTS iterations per move at 16x16x4 scale (paper: 2000)")
		base     = flag.Int("base", 6, "U-Net base channels")
		depth    = flag.Int("depth", 2, "U-Net depth")
		norm     = flag.Int("norm", 0, "GroupNorm groups (0 = off; must divide base)")
		batch    = flag.Int("batch", 32, "batch size (paper: 256)")
		epochs   = flag.Int("epochs", 2, "epochs per stage (paper: 4)")
		lr       = flag.Float64("lr", 2e-3, "Adam learning rate")
		seed     = flag.Int64("seed", 1, "random seed")
		curr     = flag.Int("curriculum", 2, "curriculum stages (paper: 4)")
		noAug    = flag.Bool("no-augment", false, "disable 16x data augmentation")
		paperSch = flag.Bool("paper", false, "use the paper's full 12-size schedule")
		metrics  = flag.String("metrics", "", "append per-stage metrics to this CSV file")
		workers  = flag.Int("workers", 0, "worker goroutines for the compute pool (0 = OARSMT_WORKERS or GOMAXPROCS)")
		tracePth = flag.String("trace", "", "write a JSON span tree of the training run to this file")
	)
	flag.Parse()
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	var sizes []layout.TrainingSize
	if *paperSch {
		sizes = layout.TrainingSizes()
	} else {
		hvs, err := parseInts(*hvList)
		if err != nil {
			log.Fatalf("-hv: %v", err)
		}
		ms, err := parseInts(*mList)
		if err != nil {
			log.Fatalf("-layers: %v", err)
		}
		for _, hv := range hvs {
			for _, m := range ms {
				sizes = append(sizes, layout.TrainingSize{HV: hv, M: m})
			}
		}
	}

	if *resume && *from != "" {
		log.Fatal("-resume and -from are mutually exclusive: -resume restores the full training state from -ckpt-dir, -from only loads model weights")
	}
	if *resume && *ckptDir == "" {
		log.Fatal("-resume needs -ckpt-dir to know where the checkpoints live")
	}

	var sel *selector.Selector
	var err error
	switch {
	case *resume:
		// The selector comes out of the checkpoint itself; created below
		// once the config is assembled.
	case *from != "":
		f, ferr := os.Open(*from)
		if ferr != nil {
			log.Fatal(ferr)
		}
		sel, err = selector.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("continuing from model %s (%d parameters)", *from, sel.Net.NumParams())
	default:
		sel, err = selector.NewRandom(rand.New(rand.NewSource(*seed)), nn.UNetConfig{
			InChannels: selector.NumFeatures, Base: *base, Depth: *depth, Kernel: 3, Norm: *norm,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("fresh selector: base=%d depth=%d (%d parameters)", *base, *depth, sel.Net.NumParams())
	}

	cfg := rl.Config{
		Sizes:            sizes,
		LayoutsPerSize:   *layouts,
		MinPins:          3,
		MaxPins:          6,
		CurriculumStages: *curr,
		MCTS:             mcts.Config{Iterations: *alpha, ScaleIterations: true, UseCritic: true, CPuct: 1, MaxNoChange: 3},
		Augment:          !*noAug,
		BatchSize:        *batch,
		EpochsPerStage:   *epochs,
		LR:               *lr,
		Seed:             *seed,
	}
	var metricsFile *os.File
	if *metrics != "" {
		var err error
		metricsFile, err = os.OpenFile(*metrics, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer metricsFile.Close()
		if st, err := metricsFile.Stat(); err == nil && st.Size() == 0 {
			fmt.Fprintln(metricsFile, "stage,episodes,samples,iterations,loss,mean_root_cost,mean_final_cost,elapsed_seconds")
		}
	}

	ctx := context.Background()
	var trace *obs.Trace
	if *tracePth != "" {
		trace = obs.NewTrace("oarsmt.train")
		ctx = obs.With(ctx, &obs.Observer{Trace: trace})
	}

	var tr *rl.Trainer
	if *resume {
		tr, err = rl.ResumeTrainer(*ckptDir, cfg, *ckptKeep)
		if err != nil {
			log.Fatal(err)
		}
		sel = tr.Selector
		log.Printf("resumed from checkpoint in %s at stage %d (%d parameters)",
			*ckptDir, tr.Stage(), sel.Net.NumParams())
	} else {
		tr = rl.NewTrainer(sel, cfg)
		if *ckptDir != "" {
			tr.EnableCheckpoints(*ckptDir, *ckptKeep)
		}
	}
	start := time.Now()
	for tr.Stage() < *stages {
		stats, err := tr.RunStageCtx(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stage %2d  episodes=%d samples=%d (x%d aug) iters=%d loss=%.5f avg cost %.0f -> %.0f  [%.1fs]\n",
			stats.Stage, stats.Episodes, stats.Samples,
			stats.TrainedSamples/max(stats.Samples, 1), stats.MCTSIterations,
			stats.MeanLoss, stats.MeanRootCost, stats.MeanFinalCost,
			time.Since(start).Seconds())
		if metricsFile != nil {
			fmt.Fprintf(metricsFile, "%d,%d,%d,%d,%g,%g,%g,%g\n",
				stats.Stage, stats.Episodes, stats.Samples, stats.MCTSIterations,
				stats.MeanLoss, stats.MeanRootCost, stats.MeanFinalCost,
				time.Since(start).Seconds())
		}
		// Export the model after every stage so long runs always leave a
		// usable -o file; -ckpt-dir additionally persists the full training
		// state (optimizer, RNG) for bit-identical -resume.
		if err := save(sel, *out); err != nil {
			log.Fatal(err)
		}
	}
	// A resumed run that was already past -stages still leaves the model.
	if err := save(sel, *out); err != nil {
		log.Fatal(err)
	}
	if trace != nil {
		f, err := os.Create(*tracePth)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote span trace to %s", *tracePth)
	}
	log.Printf("saved %s after %d stages (%.1fs)", *out, *stages, time.Since(start).Seconds())
}

func save(sel *selector.Selector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sel.Save(f)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
