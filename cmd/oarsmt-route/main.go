// oarsmt-route routes a JSON layout (geometric or grid form) with the RL
// router or one of the algorithmic baselines and reports the tree.
//
// Usage:
//
//	oarsmt-route -model selector.gob layout.json
//	oarsmt-route -algo lin18 layout.json
//	oarsmt-route -benchmark rt1 -model selector.gob
//	oarsmt-route -algo all -model selector.gob layout.json   # compare
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"oarsmt/internal/baseline"
	"oarsmt/internal/core"
	"oarsmt/internal/layout"
	"oarsmt/internal/models"
	"oarsmt/internal/obs"
	"oarsmt/internal/render"
	"oarsmt/internal/route"
	"oarsmt/internal/selector"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-route: ")

	var (
		modelPath = flag.String("model", "", "trained selector model (required for -algo ours/all)")
		algo      = flag.String("algo", "ours", "router: ours, lin08, liu14, lin18, mst, or all")
		bench     = flag.String("benchmark", "", "route a Table 4 benchmark instead of a file (rt1..rt5, ind1..ind3)")
		seq       = flag.Bool("sequential", false, "use sequential (n-2 inference) mode for ours")
		noGuard   = flag.Bool("no-guard", false, "disable guarded acceptance for ours")
		edges     = flag.Bool("edges", false, "print the routed tree edges")
		svgPath   = flag.String("svg", "", "write an SVG drawing of the (last) routed tree")
		ascii     = flag.Bool("ascii", false, "print an ASCII drawing of each routed tree")
		segments  = flag.Bool("segments", false, "print merged wire segments and via stacks")
		timeout   = flag.Duration("timeout", 0, "per-route deadline for ours/mst (0 = none), e.g. 30s")
		tracePath = flag.String("trace", "", "write a JSON span tree of the run to this file")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var trace *obs.Trace
	if *tracePath != "" {
		trace = obs.NewTrace("oarsmt.route")
		ctx = obs.With(ctx, &obs.Observer{Trace: trace})
	}

	in, err := loadInstance(*bench, flag.Args())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layout %q: %dx%dx%d Hanan graph, %d pins, %d blocked vertices, via cost %v\n",
		in.Name, in.Graph.H, in.Graph.V, in.Graph.M,
		in.NumPins(), in.Graph.NumBlocked(), in.Graph.ViaCost)

	algos := []string{*algo}
	if *algo == "all" {
		algos = []string{"mst", "lin08", "liu14", "lin18", "ours"}
	}
	var lastTree *route.Tree
	for _, a := range algos {
		tree, extra, err := runOne(ctx, a, in, *modelPath, *seq, *noGuard)
		if err != nil {
			log.Fatal(err)
		}
		lastTree = tree
		hor, ver, via := tree.WirelengthByAxis(in.Graph)
		fmt.Printf("%-6s cost=%-12.0f edges=%-6d (h=%.0f v=%.0f via=%.0f)%s\n",
			a, tree.Cost, len(tree.Edges), hor, ver, via, extra)
		if *edges {
			for _, e := range tree.Edges {
				fmt.Printf("  %v - %v\n", in.Graph.CoordOf(e.A), in.Graph.CoordOf(e.B))
			}
		}
		if *ascii {
			fmt.Print(render.ASCII(in, tree))
		}
		if *segments {
			segs, vias := tree.Segments(in.Graph)
			for _, s := range segs {
				fmt.Printf("  wire  L%d (%d,%d)-(%d,%d)\n", s.A.Layer, s.A.X, s.A.Y, s.B.X, s.B.Y)
			}
			for _, v := range vias {
				fmt.Printf("  via   (%d,%d) L%d-L%d\n", v.At.X, v.At.Y, v.FromLayer, v.ToLayer)
			}
		}
	}
	if trace != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote span trace to %s\n", *tracePath)
	}
	if *svgPath != "" && lastTree != nil {
		f, err := os.Create(*svgPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := render.SVG(f, in, lastTree, render.DefaultSVGConfig()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
}

func loadInstance(bench string, args []string) (*layout.Instance, error) {
	if bench != "" {
		spec, ok := layout.BenchmarkByName(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		return spec.Generate()
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: oarsmt-route [flags] layout.json (or -benchmark NAME)")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Accepts both the JSON format and the textual benchmark format.
	return layout.DecodeAny(f)
}

func runOne(ctx context.Context, algo string, in *layout.Instance, modelPath string, seq, noGuard bool) (*route.Tree, string, error) {
	switch algo {
	case "mst":
		tree, err := core.PlainOARMST(ctx, in)
		return tree, "", err
	case "lin08", "liu14", "lin18":
		algs := map[string]baseline.Algorithm{
			"lin08": baseline.Lin08, "liu14": baseline.Liu14, "lin18": baseline.Lin18,
		}
		res, err := baseline.New(algs[algo]).Route(in)
		if err != nil {
			return nil, "", err
		}
		return res.Tree, fmt.Sprintf("  [%v]", res.Elapsed), nil
	case "ours":
		var sel *selector.Selector
		if modelPath == "" {
			var err error
			if sel, err = models.New(); err != nil {
				return nil, "", fmt.Errorf("embedded model: %w (pass -model)", err)
			}
		} else {
			f, err := os.Open(modelPath)
			if err != nil {
				return nil, "", err
			}
			sel, err = selector.Load(f)
			f.Close()
			if err != nil {
				return nil, "", err
			}
		}
		r := core.NewRouter(sel)
		if seq {
			r.Mode = core.Sequential
		}
		r.GuardedAcceptance = !noGuard
		res, err := r.Route(ctx, in)
		if err != nil {
			return nil, "", err
		}
		return res.Tree, fmt.Sprintf("  [select %v, total %v, %d Steiner pts, %d inference(s)]",
			res.SelectTime, res.TotalTime, len(res.SteinerPoints), res.Inferences), nil
	default:
		return nil, "", fmt.Errorf("unknown algorithm %q (want ours, lin08, liu14, lin18, mst, all)", algo)
	}
}
