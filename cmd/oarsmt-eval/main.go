// oarsmt-eval reports a trained selector's routing quality on a layout
// distribution: the ST-to-MST ratio, how many Steiner points survive into
// final trees, and the head-to-head result against the [14] baseline.
//
// Usage:
//
//	oarsmt-eval -model selector.gob -h 16 -v 16 -m 4 -pins 3,6 -n 20
//	oarsmt-eval -subset T32 -n 10            # uses the embedded model
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"oarsmt/internal/experiments"
	"oarsmt/internal/layout"
	"oarsmt/internal/selector"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-eval: ")

	var (
		modelPath = flag.String("model", "", "trained selector (default: embedded pretrained)")
		h         = flag.Int("h", 16, "horizontal grids")
		v         = flag.Int("v", 16, "vertical grids")
		m         = flag.Int("m", 4, "routing layers")
		pins      = flag.String("pins", "3,6", "pin range lo,hi")
		obst      = flag.String("obstacles", "", "obstacle range lo,hi (default: training scale)")
		subset    = flag.String("subset", "", "evaluate on a Table 1 subset instead")
		n         = flag.Int("n", 10, "number of layouts")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	opts := experiments.Options{Seed: *seed, Out: os.Stdout}
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		sel, err := selector.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		opts.Selector = sel
	}

	spec, err := buildSpec(*subset, *h, *v, *m, *pins, *obst)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := experiments.EvaluateModel(opts, spec, *n); err != nil {
		log.Fatal(err)
	}
}

func buildSpec(subset string, h, v, m int, pins, obst string) (layout.RandomSpec, error) {
	if subset != "" {
		s, ok := layout.SubsetByName(subset)
		if !ok {
			return layout.RandomSpec{}, fmt.Errorf("unknown subset %q", subset)
		}
		return s.Spec, nil
	}
	pl, ph, err := parseRange(pins)
	if err != nil {
		return layout.RandomSpec{}, fmt.Errorf("-pins: %w", err)
	}
	spec := layout.TrainingSpec(layout.TrainingSize{HV: h, M: m}, pl, ph)
	spec.V = v
	if obst != "" {
		ol, oh, err := parseRange(obst)
		if err != nil {
			return layout.RandomSpec{}, fmt.Errorf("-obstacles: %w", err)
		}
		spec.MinObstacles, spec.MaxObstacles = ol, oh
	}
	return spec, nil
}

func parseRange(s string) (lo, hi int, err error) {
	parts := strings.SplitN(s, ",", 2)
	lo, err = strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, err
	}
	hi = lo
	if len(parts) == 2 {
		hi, err = strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return 0, 0, err
		}
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("range %q inverted", s)
	}
	return lo, hi, nil
}
