// oarsmt-chaos is the deterministic chaos harness driven by `make
// chaos-test`: scripted multi-process failure scenarios against a real
// oarsmt-serve cluster — worker SIGKILL under load, coordinator crash
// and ckpt recovery, an agent-side network partition, a slow shard, a
// corrupted store segment, and a flapping worker tripping its circuit
// breaker. Faults inside the child processes are armed through the
// OARSMT_FAULTS environment spec (internal/fault), so every scenario's
// failure schedule is deterministic; the only nondeterminism left is
// scheduling, which the assertions bound in lease periods rather than
// wall seconds.
//
// Every scenario asserts the chaos invariants:
//
//   - zero dropped accepted requests: every request the cluster admits
//     is answered (shed/429 is a refusal, not a drop — and the driver
//     counts any failure as a scenario failure);
//   - never a wrong route: answers are re-checked against the reference
//     cost of the same layout (workers re-validate replicated and
//     store-recovered trees server-side);
//   - bounded recovery: the cluster is healthy again within a small
//     number of lease periods, recorded per scenario.
//
// Usage:
//
//	oarsmt-chaos -bin bin/oarsmt-serve
//	oarsmt-chaos -bin bin/oarsmt-serve -run 'worker-kill|flap' -json BENCH_chaos.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"oarsmt/client"
	"oarsmt/internal/fault"
	"oarsmt/wire"
)

// chaosLayout is the reference workload: big enough that routing does
// real work, small enough that a scenario's requests finish in
// milliseconds.
const chaosLayout = `{"name":"chaos","grid":{"h":6,"v":6,"m":2,"viaCost":2,` +
	`"dx":[1,1,1,1,1],"dy":[1,1,1,1,1],"blocked":[14,15,50],"pins":[0,5,35,70]}}`

// variantLayout perturbs the reference layout's pins so each variant
// has a distinct canonical hash and therefore its own shard placement.
func variantLayout(i int) string {
	return fmt.Sprintf(`{"name":"v%d","grid":{"h":6,"v":6,"m":2,"viaCost":2,`+
		`"dx":[1,1,1,1,1],"dy":[1,1,1,1,1],"blocked":[14,15,50],"pins":[%d,5,35,70]}}`, i, i+20)
}

// result is one scenario's line in BENCH_chaos.json.
type result struct {
	Name     string  `json:"name"`
	Seconds  float64 `json:"seconds"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	// RecoverySeconds is how long the scenario's failure took to heal
	// (kill to warm successor answer, coordinator restart to first
	// route, partition to rejoin, breaker trip to reclose).
	RecoverySeconds float64 `json:"recoverySeconds"`
	// LeaseTTLSeconds is the scenario's lease period, the unit recovery
	// is budgeted in.
	LeaseTTLSeconds float64 `json:"leaseTtlSeconds,omitempty"`
	// RecoveryLeasePeriods is RecoverySeconds / LeaseTTLSeconds.
	RecoveryLeasePeriods float64 `json:"recoveryLeasePeriods,omitempty"`
	Detail               string  `json:"detail,omitempty"`
}

type report struct {
	Scenarios []result `json:"scenarios"`
	Seconds   float64  `json:"seconds"`
	Pass      bool     `json:"pass"`
}

// scenario is one scripted failure story.
type scenario struct {
	name string
	run  func(*harness) error
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-chaos: ")
	bin := flag.String("bin", "bin/oarsmt-serve", "oarsmt-serve binary to torture")
	runPat := flag.String("run", "", "regexp selecting scenarios (default all)")
	jsonOut := flag.String("json", "", "write the JSON report here")
	flag.Parse()

	scenarios := []scenario{
		{"worker-kill", scenarioWorkerKill},
		{"coord-restart", scenarioCoordRestart},
		{"partition", scenarioPartition},
		{"slow-shard", scenarioSlowShard},
		{"corrupt-store", scenarioCorruptStore},
		{"flap", scenarioFlap},
	}
	var sel *regexp.Regexp
	if *runPat != "" {
		var err error
		if sel, err = regexp.Compile(*runPat); err != nil {
			log.Fatalf("-run: %v", err)
		}
	}

	rep := report{Pass: true}
	start := time.Now()
	for _, sc := range scenarios {
		if sel != nil && !sel.MatchString(sc.name) {
			continue
		}
		h := &harness{bin: *bin, name: sc.name}
		t0 := time.Now()
		err := sc.run(h)
		h.teardown()
		r := h.res
		r.Name = sc.name
		r.Seconds = time.Since(t0).Seconds()
		if r.LeaseTTLSeconds > 0 {
			r.RecoveryLeasePeriods = r.RecoverySeconds / r.LeaseTTLSeconds
		}
		if err != nil {
			rep.Pass = false
			log.Printf("FAIL %s: %v", sc.name, err)
		} else {
			log.Printf("pass %s: %d reqs, %d errors, recovery %.2fs (%.2f lease periods)",
				sc.name, r.Requests, r.Errors, r.RecoverySeconds, r.RecoveryLeasePeriods)
		}
		rep.Scenarios = append(rep.Scenarios, r)
	}
	rep.Seconds = time.Since(start).Seconds()

	if *jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *jsonOut)
	}
	if !rep.Pass {
		os.Exit(1)
	}
	if len(rep.Scenarios) == 0 {
		log.Fatalf("-run %q matched no scenarios", *runPat)
	}
	log.Print("PASS")
}

// harness owns one scenario's fleet of child processes and its counters.
type harness struct {
	bin     string
	name    string
	res     result
	daemons []*daemon

	requests atomic.Int64
	errors   atomic.Int64
}

func (h *harness) teardown() {
	for _, d := range h.daemons {
		d.cmd.Process.Kill()
	}
	h.res.Requests = h.requests.Load()
	h.res.Errors = h.errors.Load()
}

// daemon is one child oarsmt-serve process and the client bound to it.
type daemon struct {
	cmd    *exec.Cmd
	addr   string // host:port
	base   string // http://host:port
	cl     *client.Client
	exited chan error
}

// start launches the binary on addr (empty picks a free port) with the
// given OARSMT_FAULTS spec and extra args, and waits for health.
func (h *harness) start(addr, faults string, extra ...string) (*daemon, error) {
	if addr == "" {
		var err error
		if addr, err = freeAddr(); err != nil {
			return nil, err
		}
	}
	args := append([]string{"-addr", addr, "-queue", "32", "-timeout", "30s"}, extra...)
	cmd := exec.Command(h.bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	cmd.Env = os.Environ()
	if faults != "" {
		cmd.Env = append(cmd.Env, "OARSMT_FAULTS="+faults)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", h.bin, err)
	}
	cl, err := client.New(client.Config{BaseURL: "http://" + addr, Timeout: 60 * time.Second, Retries: 2})
	if err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	d := &daemon{cmd: cmd, addr: addr, base: "http://" + addr, cl: cl, exited: make(chan error, 1)}
	//oarsmt:allow rawgo(chaos-test plumbing: waits on the child daemon process, no routing state involved)
	go func() { d.exited <- cmd.Wait() }()
	h.daemons = append(h.daemons, d)
	if err := waitHealthy(d.cl, d.exited); err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	return d, nil
}

// kill SIGKILLs the daemon — no drain, no goodbye.
func (d *daemon) kill() error {
	if err := d.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	select {
	case <-d.exited:
		return nil
	case <-time.After(60 * time.Second):
		return fmt.Errorf("daemon survived SIGKILL for 60s")
	}
}

// route routes one layout through cl, counting it against the harness.
func (h *harness) route(cl *client.Client, layoutJSON string, edges bool) (*wire.RouteResponse, error) {
	h.requests.Add(1)
	var opts *client.RouteOptions
	if edges {
		opts = &client.RouteOptions{Edges: true}
	}
	resp, err := cl.RouteJSON(context.Background(), []byte(layoutJSON), opts)
	if err != nil {
		h.errors.Add(1)
	}
	return resp, err
}

// scenarioWorkerKill: SIGKILL the shard owner of the reference layout
// while concurrent requests are in flight. Replication must leave the
// shard warm on the successor (a cache hit at the same cost), no
// admitted request may be dropped, and a restarted worker reusing the
// same identity rejoins within three lease periods.
func scenarioWorkerKill(h *harness) error {
	const ttl = 2 * time.Second
	h.res.LeaseTTLSeconds = ttl.Seconds()
	coord, err := h.start("", "", "-coordinator", "-lease-ttl", "2s", "-hedge-delay", "100ms",
		"-breaker-threshold", "3", "-breaker-cooldown", "500ms", "-replicate")
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	workers := map[string]*daemon{}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("w%d", i)
		w, err := h.start("", "", "-register", coord.base, "-worker-id", id)
		if err != nil {
			return fmt.Errorf("worker %s: %w", id, err)
		}
		workers[id] = w
	}
	if err := waitCluster(coord.cl, func(st *wire.ClusterStats) bool { return len(st.Workers) >= 3 }); err != nil {
		return fmt.Errorf("3 workers never registered: %w", err)
	}

	first, err := h.route(coord.cl, chaosLayout, true)
	if err != nil {
		return err
	}
	victim := workers[first.Worker]
	if victim == nil {
		return fmt.Errorf("reference layout served by unknown worker %q", first.Worker)
	}
	// The successor must be warm before the kill: replication is async.
	if err := waitCluster(coord.cl, func(st *wire.ClusterStats) bool { return st.Replicated >= 1 }); err != nil {
		return fmt.Errorf("reference route never replicated: %w", err)
	}

	// Kill the owner mid-load: 8 drivers × 6 requests across every
	// shard, with the SIGKILL landing while they are in flight.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		//oarsmt:allow goroleak(bounded request loop joined by wg.Wait a few lines down)
		go func(i int) { //oarsmt:allow rawgo(chaos-test plumbing: concurrent load during the kill, joined below)
			defer wg.Done()
			for j := 0; j < 6; j++ {
				if j%2 == 0 {
					h.route(coord.cl, chaosLayout, false)
				} else {
					h.route(coord.cl, variantLayout(i*6+j), false)
				}
			}
		}(i)
	}
	killedAt := time.Now()
	if err := victim.kill(); err != nil {
		return err
	}
	wg.Wait()
	if n := h.errors.Load(); n != 0 {
		return fmt.Errorf("%d of %d requests dropped during the worker kill", n, h.requests.Load())
	}

	// The shard serves warm from the successor.
	warm, err := h.route(coord.cl, chaosLayout, false)
	if err != nil {
		return fmt.Errorf("route after the kill: %w", err)
	}
	h.res.RecoverySeconds = time.Since(killedAt).Seconds()
	if warm.Worker == first.Worker {
		return fmt.Errorf("killed worker %q still serving", first.Worker)
	}
	if !warm.CacheHit {
		return fmt.Errorf("successor %q served the shard cold — replication did not warm it", warm.Worker)
	}
	if warm.Cost != first.Cost {
		return fmt.Errorf("successor cost %v != reference cost %v", warm.Cost, first.Cost)
	}

	// A replacement reusing the identity rejoins within 3 lease periods.
	rejoinStart := time.Now()
	if _, err := h.start("", "", "-register", coord.base, "-worker-id", first.Worker); err != nil {
		return fmt.Errorf("restarted worker: %w", err)
	}
	if err := waitCluster(coord.cl, func(st *wire.ClusterStats) bool {
		live := 0
		for _, w := range st.Workers {
			if !w.Draining && w.LeaseMillis > 0 {
				live++
			}
		}
		return live >= 3
	}); err != nil {
		return fmt.Errorf("restarted worker never rejoined: %w", err)
	}
	if rejoin := time.Since(rejoinStart); rejoin > 3*ttl {
		return fmt.Errorf("rejoin took %v, budget 3 lease periods (%v)", rejoin, 3*ttl)
	}
	again, err := h.route(coord.cl, chaosLayout, false)
	if err != nil {
		return err
	}
	if again.Cost != first.Cost {
		return fmt.Errorf("post-rejoin cost %v != reference cost %v", again.Cost, first.Cost)
	}
	h.res.Detail = fmt.Sprintf("owner %s killed; successor %s warm; rejoined", first.Worker, warm.Worker)
	return nil
}

// scenarioCoordRestart: SIGKILL the coordinator and restart it on the
// same address over the same -state-dir. The ring must come back from
// the ckpt frames — workers listed, Restored counted, routing answering
// — within one lease period, without waiting for any agent to renew.
func scenarioCoordRestart(h *harness) error {
	const ttl = 3 * time.Second
	h.res.LeaseTTLSeconds = ttl.Seconds()
	dir, err := os.MkdirTemp("", "oarsmt-chaos-state-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	coordArgs := []string{"-coordinator", "-lease-ttl", "3s", "-hedge-delay", "100ms", "-state-dir", dir}
	coord, err := h.start(addr, "", coordArgs...)
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := h.start("", "", "-register", coord.base, "-worker-id", fmt.Sprintf("w%d", i)); err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
	}
	if err := waitCluster(coord.cl, func(st *wire.ClusterStats) bool { return len(st.Workers) >= 2 }); err != nil {
		return err
	}
	first, err := h.route(coord.cl, chaosLayout, false)
	if err != nil {
		return err
	}

	if err := coord.kill(); err != nil {
		return err
	}
	restartAt := time.Now()
	coord2, err := h.start(addr, "", coordArgs...)
	if err != nil {
		return fmt.Errorf("restarted coordinator: %w", err)
	}
	st, err := coord2.cl.ClusterStats(context.Background())
	if err != nil {
		return err
	}
	if len(st.Workers) != 2 || st.Restored != 2 {
		return fmt.Errorf("restarted ring has %d workers (%d restored), want 2/2", len(st.Workers), st.Restored)
	}
	resp, err := h.route(coord2.cl, chaosLayout, false)
	if err != nil {
		return fmt.Errorf("route on restored coordinator: %w", err)
	}
	h.res.RecoverySeconds = time.Since(restartAt).Seconds()
	if resp.Cost != first.Cost {
		return fmt.Errorf("restored cost %v != reference cost %v", resp.Cost, first.Cost)
	}
	if h.res.RecoverySeconds > ttl.Seconds() {
		return fmt.Errorf("recovery took %.2fs, budget one lease period (%v)", h.res.RecoverySeconds, ttl)
	}
	// The agents renew against the restored coordinator before the grace
	// window lapses: the ring must still be whole one sweep later.
	time.Sleep(ttl / 2)
	st, err = coord2.cl.ClusterStats(context.Background())
	if err != nil {
		return err
	}
	if len(st.Workers) != 2 {
		return fmt.Errorf("ring shrank to %d workers after the grace window", len(st.Workers))
	}
	h.res.Detail = fmt.Sprintf("ring restored from ckpt frames, first route %.0fms after restart", h.res.RecoverySeconds*1000)
	return nil
}

// scenarioPartition: one worker's agent is partitioned from the
// coordinator (client.transport armed in the worker process), so its
// renewals die at the transport. The sweep collects the lease, routing
// continues on the survivor, and when the fault schedule exhausts the
// agent's capped backoff re-registers the worker.
func scenarioPartition(h *harness) error {
	const ttl = 2 * time.Second
	h.res.LeaseTTLSeconds = ttl.Seconds()
	coord, err := h.start("", "", "-coordinator", "-lease-ttl", "2s", "-hedge-delay", "100ms")
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	if _, err := h.start("", "", "-register", coord.base, "-worker-id", "steady"); err != nil {
		return fmt.Errorf("steady worker: %w", err)
	}
	// after=1 lets the startup registration through. Each failed agent
	// cycle burns six transport attempts — a renewal and a fallback
	// re-registration, each retried twice by the client — so times=12
	// blacks out two cycles, long enough for the 2s lease to lapse and
	// the sweep (every TTL/2) to collect it before the partition heals.
	spec := fault.FormatSpec(map[string]fault.Options{
		"client.transport": {Mode: fault.Error, After: 1, Times: 12},
	})
	if _, err := h.start("", spec, "-register", coord.base, "-worker-id", "flaky"); err != nil {
		return fmt.Errorf("partitioned worker: %w", err)
	}
	if err := waitCluster(coord.cl, func(st *wire.ClusterStats) bool { return len(st.Workers) >= 2 }); err != nil {
		return err
	}

	// The partition starves the lease; the sweep collects it. Routing
	// keeps answering off the survivor the whole time.
	droppedAt := time.Now()
	if err := waitCluster(coord.cl, func(st *wire.ClusterStats) bool {
		h.route(coord.cl, variantLayout(int(h.requests.Load())%16), false)
		return len(st.Workers) == 1
	}); err != nil {
		return fmt.Errorf("partitioned worker never swept: %w", err)
	}
	if err := waitCluster(coord.cl, func(st *wire.ClusterStats) bool {
		h.route(coord.cl, variantLayout(int(h.requests.Load())%16), false)
		return len(st.Workers) == 2
	}); err != nil {
		return fmt.Errorf("partitioned worker never re-registered: %w", err)
	}
	h.res.RecoverySeconds = time.Since(droppedAt).Seconds()
	if n := h.errors.Load(); n != 0 {
		return fmt.Errorf("%d requests dropped during the partition", n)
	}
	st, err := coord.cl.ClusterStats(context.Background())
	if err != nil {
		return err
	}
	if st.Expired < 1 {
		return fmt.Errorf("sweep never counted the partitioned worker: %+v", st)
	}
	// The backoff caps at the TTL, so sweep-to-rejoin is bounded by the
	// fault schedule plus one capped delay; five lease periods is ample.
	if h.res.RecoverySeconds > 5*ttl.Seconds() {
		return fmt.Errorf("rejoin took %.2fs, budget 5 lease periods", h.res.RecoverySeconds)
	}
	h.res.Detail = "agent blackout: swept then re-registered on capped backoff"
	return nil
}

// scenarioSlowShard: a fault-injected delay makes every fourth forward
// attempt slow; the hedge timer must fire and the fallback answer win,
// with zero failures.
func scenarioSlowShard(h *harness) error {
	spec := fault.FormatSpec(map[string]fault.Options{
		"cluster.forward": {Mode: fault.Delay, Delay: 400 * time.Millisecond, Every: 4},
	})
	coord, err := h.start("", spec, "-coordinator", "-lease-ttl", "5s", "-hedge-delay", "80ms")
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := h.start("", "", "-register", coord.base, "-worker-id", fmt.Sprintf("w%d", i)); err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
	}
	if err := waitCluster(coord.cl, func(st *wire.ClusterStats) bool { return len(st.Workers) >= 2 }); err != nil {
		return err
	}

	t0 := time.Now()
	for i := 0; i < 12; i++ {
		if _, err := h.route(coord.cl, variantLayout(i), false); err != nil {
			return fmt.Errorf("route %d through slow shard: %w", i, err)
		}
	}
	h.res.RecoverySeconds = time.Since(t0).Seconds()
	st, err := coord.cl.ClusterStats(context.Background())
	if err != nil {
		return err
	}
	if st.Hedges < 1 {
		return fmt.Errorf("delayed shard never triggered a hedge: %+v", st)
	}
	h.res.Detail = fmt.Sprintf("%d hedges (%d wins) over 12 routes", st.Hedges, st.HedgeWins)
	return nil
}

// scenarioCorruptStore: flip a byte in a persistent store segment
// between a SIGKILL and a warm restart. The worker must come up, and
// the re-routed layout must cost exactly what it did before — the
// store's checksums and the serve-side tree validation make corruption
// a cache miss, never a wrong answer.
func scenarioCorruptStore(h *harness) error {
	dir, err := os.MkdirTemp("", "oarsmt-chaos-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cold, err := h.start("", "", "-store-dir", dir, "-store-flush", "1")
	if err != nil {
		return err
	}
	first, err := h.route(cold.cl, chaosLayout, true)
	if err != nil {
		return err
	}
	if err := waitStat(func() bool {
		st, err := cold.cl.Stats(context.Background())
		return err == nil && st.StoreWrites > 0
	}); err != nil {
		return fmt.Errorf("store write never landed: %w", err)
	}
	if err := cold.kill(); err != nil {
		return err
	}
	killedAt := time.Now()

	corrupted, err := flipStoreByte(dir)
	if err != nil {
		return err
	}
	warm, err := h.start("", "", "-store-dir", dir)
	if err != nil {
		return fmt.Errorf("restart over corrupted store: %w", err)
	}
	resp, err := h.route(warm.cl, chaosLayout, true)
	if err != nil {
		return fmt.Errorf("route after corruption: %w", err)
	}
	h.res.RecoverySeconds = time.Since(killedAt).Seconds()
	if resp.Cost != first.Cost {
		return fmt.Errorf("post-corruption cost %v != reference %v — a wrong route survived", resp.Cost, first.Cost)
	}
	if len(resp.Edges) == 0 || resp.Degraded {
		return fmt.Errorf("degenerate post-corruption response: %+v", resp)
	}
	h.res.Detail = fmt.Sprintf("flipped a byte in %s; served correct at equal cost (storeHit=%v)",
		filepath.Base(corrupted), resp.StoreHit)
	return nil
}

// flipStoreByte flips one byte in the middle of the largest file under
// dir, simulating silent disk corruption.
func flipStoreByte(dir string) (string, error) {
	var target string
	var size int64
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		if info.Size() > size {
			target, size = path, info.Size()
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if target == "" || size == 0 {
		return "", fmt.Errorf("no store file to corrupt under %s", dir)
	}
	b, err := os.ReadFile(target)
	if err != nil {
		return "", err
	}
	b[len(b)/2] ^= 0xff
	return target, os.WriteFile(target, b, 0o644)
}

// scenarioFlap: a worker fails its next three enqueues — exactly the
// breaker threshold — trips its breaker open (with every failed request
// retried on the healthy shard), and recovers through the half-open
// probe once the fault schedule exhausts.
func scenarioFlap(h *harness) error {
	coord, err := h.start("", "", "-coordinator", "-lease-ttl", "5s", "-hedge-delay=-1ms",
		"-breaker-threshold", "3", "-breaker-cooldown", "700ms")
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	spec := fault.FormatSpec(map[string]fault.Options{
		"serve.enqueue": {Mode: fault.Error, Times: 3},
	})
	flaky, err := h.start("", spec, "-register", coord.base, "-worker-id", "flappy")
	if err != nil {
		return fmt.Errorf("flapping worker: %w", err)
	}
	_ = flaky
	if _, err := h.start("", "", "-register", coord.base, "-worker-id", "steady"); err != nil {
		return fmt.Errorf("steady worker: %w", err)
	}
	if err := waitCluster(coord.cl, func(st *wire.ClusterStats) bool { return len(st.Workers) >= 2 }); err != nil {
		return err
	}

	// Route until the breaker trips; every request must still answer
	// (failures on the flapping shard are retried on the steady one).
	trippedAt := time.Time{}
	var i int
	if err := waitCluster(coord.cl, func(st *wire.ClusterStats) bool {
		if _, err := h.route(coord.cl, variantLayout(i%16), false); err != nil {
			return false
		}
		i++
		return st.BreakerOpens >= 1
	}); err != nil {
		return fmt.Errorf("flapping worker never tripped its breaker: %w", err)
	}
	trippedAt = time.Now()
	if n := h.errors.Load(); n != 0 {
		return fmt.Errorf("%d requests dropped while the breaker tripped", n)
	}

	// Keep routing: past the cooldown a probe recloses the breaker.
	if err := waitCluster(coord.cl, func(st *wire.ClusterStats) bool {
		h.route(coord.cl, variantLayout(i%16), false)
		i++
		for _, w := range st.Workers {
			if w.ID == "flappy" {
				return w.Breaker == "closed"
			}
		}
		return false
	}); err != nil {
		return fmt.Errorf("breaker never reclosed through the half-open probe: %w", err)
	}
	h.res.RecoverySeconds = time.Since(trippedAt).Seconds()
	if n := h.errors.Load(); n != 0 {
		return fmt.Errorf("%d requests dropped during breaker recovery", n)
	}
	st, err := coord.cl.ClusterStats(context.Background())
	if err != nil {
		return err
	}
	h.res.Detail = fmt.Sprintf("breaker tripped %d time(s), reclosed %.2fs after trip, %d retries",
		st.BreakerOpens, h.res.RecoverySeconds, st.Retries)
	return nil
}

// waitCluster polls the coordinator's stats (10ms doubling to 640ms,
// bounded) until cond holds.
func waitCluster(cl *client.Client, cond func(*wire.ClusterStats) bool) error {
	delay := 10 * time.Millisecond
	var last *wire.ClusterStats
	for i := 0; i < 80; i++ {
		st, err := cl.ClusterStats(context.Background())
		if err == nil {
			last = st
			if cond(st) {
				return nil
			}
		}
		time.Sleep(delay)
		if delay *= 2; delay > 640*time.Millisecond {
			delay = 640 * time.Millisecond
		}
	}
	return fmt.Errorf("condition never held (last stats: %+v)", last)
}

// waitStat polls an arbitrary condition on the same bounded backoff.
func waitStat(cond func() bool) error {
	delay := 10 * time.Millisecond
	for i := 0; i < 80; i++ {
		if cond() {
			return nil
		}
		time.Sleep(delay)
		if delay *= 2; delay > 640*time.Millisecond {
			delay = 640 * time.Millisecond
		}
	}
	return fmt.Errorf("condition never held")
}

// freeAddr reserves then releases a loopback port; the tiny reuse race
// is acceptable for a chaos driver.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// waitHealthy polls health with a bounded deterministic backoff so the
// startup race between the child binding its port and the first probe
// resolves the same way on a loaded CI box as on a fast laptop.
func waitHealthy(cl *client.Client, exited <-chan error) error {
	delay := 10 * time.Millisecond
	var lastErr error
	for i := 0; i < 40; i++ {
		select {
		case err := <-exited:
			return fmt.Errorf("daemon exited before becoming healthy: %v", err)
		default:
		}
		if err := cl.Healthz(context.Background()); err == nil {
			return nil
		} else {
			lastErr = err
		}
		time.Sleep(delay)
		if delay *= 2; delay > 640*time.Millisecond {
			delay = 640 * time.Millisecond
		}
	}
	return fmt.Errorf("health not ready after 40 probes (last err: %v)", lastErr)
}
