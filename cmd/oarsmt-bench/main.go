// oarsmt-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	oarsmt-bench -exp table1
//	oarsmt-bench -exp table2 -scale small -model selector.gob
//	oarsmt-bench -exp fig11 -scale medium
//	oarsmt-bench -exp all -scale small -model selector.gob
//
// Experiments: table1, table2, table3, fig10 (these three share one
// evaluation pass), table4, fig11, fig12, speedups, ablation, all.
// Scales: small (seconds-minutes), medium (minutes), paper (the paper's
// own counts; impractical on one CPU, provided for completeness).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"oarsmt/internal/experiments"
	"oarsmt/internal/obs"
	"oarsmt/internal/parallel"
	"oarsmt/internal/selector"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-bench: ")

	var (
		exp       = flag.String("exp", "all", "experiment: table1,table2,table3,table4,fig10,fig11,fig12,speedups,ablation,optgap,obs,all")
		scaleFlag = flag.String("scale", "small", "small, medium or paper")
		modelPath = flag.String("model", "", "trained selector (default: the embedded pretrained model)")
		seed      = flag.Int64("seed", 1, "random seed")
		csvDir    = flag.String("csv", "", "directory to also dump raw series as CSV files")
		workers   = flag.Int("workers", 0, "worker goroutines for the compute pool (0 = OARSMT_WORKERS or GOMAXPROCS)")
		tracePath = flag.String("trace", "", "write a JSON span tree of the benchmark run to this file")
		obsOut    = flag.String("obs-out", "BENCH_obs.json", "output path for the -exp obs stage-timing report")
	)
	flag.Parse()
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		log.Fatal(err)
	}
	opts := experiments.Options{Scale: scale, Seed: *seed, Out: os.Stdout}
	var trace *obs.Trace
	if *tracePath != "" {
		trace = obs.NewTrace("oarsmt.bench")
		opts.Ctx = obs.With(context.Background(), &obs.Observer{Trace: trace})
	}
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		sel, err := selector.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		opts.Selector = sel
		log.Printf("loaded model %s (%d parameters)", *modelPath, sel.Net.NumParams())
	} else {
		log.Print("no -model given: using the embedded pretrained selector")
	}

	wants := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		wants[strings.TrimSpace(e)] = true
	}
	all := wants["all"]

	if all || wants["table1"] {
		experiments.Table1(opts)
		fmt.Println()
	}
	if all || wants["table2"] || wants["table3"] || wants["fig10"] {
		evals, err := experiments.RunComparison(opts)
		if err != nil {
			log.Fatal(err)
		}
		writeCSV(*csvDir, "comparison.csv", func(w *os.File) error {
			return experiments.WriteComparisonCSV(w, evals)
		})
		if all || wants["table2"] {
			experiments.Table2(opts, evals)
			fmt.Println()
		}
		if all || wants["table3"] {
			experiments.Table3(opts, evals)
			fmt.Println()
		}
		if all || wants["fig10"] {
			buckets := experiments.Fig10(opts, evals, 5)
			writeCSV(*csvDir, "fig10.csv", func(w *os.File) error {
				return experiments.WriteFig10CSV(w, buckets)
			})
			fmt.Println()
		}
	}
	if all || wants["table4"] {
		if _, err := experiments.Table4(opts); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if all || wants["fig11"] {
		cfg := experiments.FigTrainingDefaults(11, scale)
		curves, err := experiments.TrainingComparison(opts, cfg)
		if err != nil {
			log.Fatal(err)
		}
		writeCSV(*csvDir, "fig11.csv", func(w *os.File) error {
			return experiments.WriteTrainingCSV(w, curves)
		})
		fmt.Println()
	}
	if all || wants["fig12"] {
		cfg := experiments.FigTrainingDefaults(12, scale)
		curves, err := experiments.TrainingComparison(opts, cfg)
		if err != nil {
			log.Fatal(err)
		}
		writeCSV(*csvDir, "fig12.csv", func(w *os.File) error {
			return experiments.WriteTrainingCSV(w, curves)
		})
		fmt.Println()
	}
	if all || wants["speedups"] {
		cfg := experiments.FigTrainingDefaults(12, scale)
		if _, err := experiments.MeasureSpeedups(opts, cfg); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if all || wants["ablation"] {
		n := 4
		if scale >= experiments.ScaleMedium {
			n = 16
		}
		if _, err := experiments.AblationPriorityPruning(opts, n); err != nil {
			log.Fatal(err)
		}
		if _, err := experiments.AblationGuardedAcceptance(opts, n); err != nil {
			log.Fatal(err)
		}
		if _, err := experiments.AblationBoundedMaze(opts, n); err != nil {
			log.Fatal(err)
		}
	}
	if all || wants["optgap"] {
		n := 6
		if scale >= experiments.ScaleMedium {
			n = 30
		}
		if _, err := experiments.OptimalityGap(opts, n); err != nil {
			log.Fatal(err)
		}
	}
	if all || wants["obs"] {
		n := 8
		if scale >= experiments.ScaleMedium {
			n = 32
		}
		rep, err := experiments.StageBench(opts, n)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*obsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.WriteObsBenchJSON(f, rep); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *obsOut)
	}
	if trace != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote span trace to %s", *tracePath)
	}
}

// writeCSV writes one CSV artefact into dir (no-op when dir is empty).
func writeCSV(dir, name string, fill func(*os.File) error) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fill(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
}
