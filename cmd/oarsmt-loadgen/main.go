// oarsmt-loadgen drives load at an oarsmt serving endpoint — a single
// worker or a cluster coordinator — through the public client package,
// and reports a throughput/latency curve.
//
// Two loops are supported. The closed loop (-sweep) holds N workers
// each issuing the next request as soon as the last answers, sweeping N
// over the given levels: the classic saturation curve. The open loop
// (-rate) fires requests on a fixed schedule regardless of completions,
// measuring latency under a set arrival rate.
//
// Usage:
//
//	oarsmt-loadgen -url http://127.0.0.1:8930 -duration 5s -sweep 1,2,4,8
//	oarsmt-loadgen -url http://127.0.0.1:8931 -duration 10s -rate 200
//	oarsmt-loadgen ... -json BENCH_cluster.json
//
// The workload is a deterministic pool of -layouts random layouts
// (seeded by -seed) cycled round-robin, so runs are reproducible and a
// cache-affine cluster shows its hit rate once the pool has been seen.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"oarsmt/client"
	"oarsmt/internal/layout"
	"oarsmt/internal/obs"
	"oarsmt/wire"
)

// point is one measured load level in the report's curve.
type point struct {
	Concurrency int     `json:"concurrency,omitempty"`
	RateRPS     float64 `json:"rateRps,omitempty"`
	Seconds     float64 `json:"seconds"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	// ErrorClasses breaks Errors down by wire error code (queue_full,
	// timeout, transient, ...); errors without a code count as "other".
	ErrorClasses map[string]int64 `json:"errorClasses,omitempty"`
	Throughput   float64          `json:"throughputRps"`
	P50Millis    float64          `json:"p50Millis"`
	P90Millis    float64          `json:"p90Millis"`
	P99Millis    float64          `json:"p99Millis"`
}

// report is the JSON document written by -json (BENCH_cluster.json in
// the cluster smoke run).
type report struct {
	URL     string `json:"url"`
	Mode    string `json:"mode"`
	Layouts int    `json:"layouts"`
	Seed    int64  `json:"seed"`
	// WarmupSeconds is the per-level warmup window whose requests were
	// driven but not measured.
	WarmupSeconds float64 `json:"warmupSeconds,omitempty"`
	Curve         []point `json:"curve"`
	CacheHot      bool    `json:"cacheHot"`
}

// errClasses tallies errors by wire code.
type errClasses struct {
	mu sync.Mutex
	m  map[string]int64
}

func (e *errClasses) add(err error) {
	code := wire.Code(err)
	if code == "" {
		code = "other"
	}
	e.mu.Lock()
	if e.m == nil {
		e.m = map[string]int64{}
	}
	e.m[code]++
	e.mu.Unlock()
}

func (e *errClasses) snapshot() map[string]int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(e.m))
	for k, v := range e.m {
		out[k] = v
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-loadgen: ")

	var (
		url      = flag.String("url", "http://127.0.0.1:8931", "serving endpoint base URL")
		duration = flag.Duration("duration", 5*time.Second, "measurement window per load level")
		sweep    = flag.String("sweep", "1,2,4", "closed-loop concurrency levels, comma-separated")
		rate     = flag.Float64("rate", 0, "open-loop arrival rate in req/s (overrides -sweep)")
		layouts  = flag.Int("layouts", 16, "distinct layouts in the workload pool")
		seed     = flag.Int64("seed", 1, "layout pool seed")
		size     = flag.Int("size", 8, "layout grid side (H=V)")
		lays     = flag.Int("metal", 2, "layout metal layers")
		pins     = flag.Int("pins", 5, "pins per layout")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		warm     = flag.Bool("warm", false, "route the whole pool once before measuring (cache-hot curve)")
		warmup   = flag.Duration("warmup", 0, "per-level warmup window driven at full load but excluded from measurement")
		jsonOut  = flag.String("json", "", "write the JSON report here")
	)
	flag.Parse()

	cl, err := client.New(client.Config{BaseURL: *url, Timeout: *timeout})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := buildPool(*seed, *layouts, *size, *lays, *pins)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cl.Healthz(ctx); err != nil {
		log.Fatalf("endpoint %s not healthy: %v", *url, err)
	}
	if *warm {
		for i, lj := range pool {
			if _, err := cl.RouteJSON(ctx, lj, nil); err != nil {
				log.Fatalf("warming layout %d: %v", i, err)
			}
		}
	}

	rep := report{URL: *url, Layouts: *layouts, Seed: *seed, CacheHot: *warm, WarmupSeconds: warmup.Seconds()}
	if *rate > 0 {
		rep.Mode = "open"
		if *warmup > 0 {
			if _, err := runOpen(ctx, cl, pool, *rate, *warmup); err != nil {
				log.Fatal(err)
			}
		}
		p, err := runOpen(ctx, cl, pool, *rate, *duration)
		if err != nil {
			log.Fatal(err)
		}
		rep.Curve = append(rep.Curve, p)
		printPoint(p)
	} else {
		rep.Mode = "closed"
		levels, err := parseLevels(*sweep)
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range levels {
			if *warmup > 0 {
				runClosed(ctx, cl, pool, n, *warmup)
			}
			p := runClosed(ctx, cl, pool, n, *duration)
			rep.Curve = append(rep.Curve, p)
			printPoint(p)
			if ctx.Err() != nil {
				break
			}
		}
	}

	if *jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *jsonOut)
	}
}

// buildPool pre-encodes the deterministic layout pool.
func buildPool(seed int64, n, size, metal, pins int) ([][]byte, error) {
	rng := rand.New(rand.NewSource(seed))
	pool := make([][]byte, n)
	for i := range pool {
		in, err := layout.Random(rng, layout.RandomSpec{
			H: size, V: size, MinM: metal, MaxM: metal,
			MinPins: pins, MaxPins: pins,
			MinObstacles: 2, MaxObstacles: 6,
		})
		if err != nil {
			return nil, err
		}
		var buf strings.Builder
		if err := layout.EncodeInstance(&buf, in); err != nil {
			return nil, err
		}
		pool[i] = []byte(buf.String())
	}
	return pool, nil
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-sweep: %q: want positive integers", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runClosed measures one closed-loop level: n workers, each request
// issued the moment the previous one answers.
func runClosed(ctx context.Context, cl *client.Client, pool [][]byte, n int, d time.Duration) point {
	reg := obs.NewRegistry()
	hist := reg.Histogram("loadgen.latency")
	var requests, errors atomic.Int64
	var next atomic.Int64
	var classes errClasses

	lctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		//oarsmt:allow rawgo(load driver: one closed-loop worker per concurrency slot, stopped by lctx)
		go func() {
			defer wg.Done()
			for lctx.Err() == nil {
				lj := pool[int(next.Add(1)-1)%len(pool)]
				t0 := time.Now()
				_, err := cl.RouteJSON(lctx, lj, nil)
				if lctx.Err() != nil && err != nil {
					return // the window closed mid-request; don't count it
				}
				hist.Observe(time.Since(t0))
				requests.Add(1)
				if err != nil {
					errors.Add(1)
					classes.add(err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return point{
		Concurrency:  n,
		Seconds:      elapsed,
		Requests:     requests.Load(),
		Errors:       errors.Load(),
		ErrorClasses: classes.snapshot(),
		Throughput:   float64(requests.Load()) / elapsed,
		P50Millis:    float64(hist.Percentile(0.50).Microseconds()) / 1000,
		P90Millis:    float64(hist.Percentile(0.90).Microseconds()) / 1000,
		P99Millis:    float64(hist.Percentile(0.99).Microseconds()) / 1000,
	}
}

// runOpen fires requests at a fixed arrival rate, regardless of how
// fast they complete; latency under a known offered load.
func runOpen(ctx context.Context, cl *client.Client, pool [][]byte, rate float64, d time.Duration) (point, error) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		return point{}, fmt.Errorf("-rate %v too high: sub-nanosecond interval", rate)
	}
	reg := obs.NewRegistry()
	hist := reg.Histogram("loadgen.latency")
	var requests, errors atomic.Int64
	var classes errClasses

	lctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var wg sync.WaitGroup
	var i int
loop:
	for {
		select {
		case <-lctx.Done():
			break loop
		case <-tick.C:
			lj := pool[i%len(pool)]
			i++
			wg.Add(1)
			//oarsmt:allow rawgo(load driver: open-loop arrivals must not wait for completions; stopped by lctx)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				_, err := cl.RouteJSON(lctx, lj, nil)
				if lctx.Err() != nil && err != nil {
					return
				}
				hist.Observe(time.Since(t0))
				requests.Add(1)
				if err != nil {
					errors.Add(1)
					classes.add(err)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return point{
		RateRPS:      rate,
		Seconds:      elapsed,
		Requests:     requests.Load(),
		Errors:       errors.Load(),
		ErrorClasses: classes.snapshot(),
		Throughput:   float64(requests.Load()) / elapsed,
		P50Millis:    float64(hist.Percentile(0.50).Microseconds()) / 1000,
		P90Millis:    float64(hist.Percentile(0.90).Microseconds()) / 1000,
		P99Millis:    float64(hist.Percentile(0.99).Microseconds()) / 1000,
	}, nil
}

func printPoint(p point) {
	label := fmt.Sprintf("c=%d", p.Concurrency)
	if p.RateRPS > 0 {
		label = fmt.Sprintf("rate=%g/s", p.RateRPS)
	}
	log.Printf("%s: %d reqs (%d errors) in %.1fs — %.1f req/s, p50 %.2fms p90 %.2fms p99 %.2fms",
		label, p.Requests, p.Errors, p.Seconds, p.Throughput, p.P50Millis, p.P90Millis, p.P99Millis)
}
