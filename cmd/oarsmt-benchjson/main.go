// oarsmt-benchjson converts two `go test -bench` runs — a serial baseline
// (OARSMT_WORKERS=0) and a parallel run — into a machine-readable JSON
// report with before/after ns/op and the resulting speedup per benchmark.
// `make bench` uses it to produce BENCH_tensor.json.
//
// Usage:
//
//	oarsmt-benchjson -serial bench_serial.txt -parallel bench_parallel.txt \
//	    -o BENCH_tensor.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's before/after measurement.
type Entry struct {
	Name           string  `json:"name"`
	SerialNsPerOp  float64 `json:"serial_ns_per_op"`
	ParallelNsPerOp float64 `json:"parallel_ns_per_op"`
	Speedup        float64 `json:"speedup"`
	AllocsPerOp    float64 `json:"allocs_per_op,omitempty"`
}

// Report is the whole BENCH_tensor.json document.
type Report struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-benchjson: ")

	var (
		serialPath   = flag.String("serial", "", "bench output of the OARSMT_WORKERS=0 run")
		parallelPath = flag.String("parallel", "", "bench output of the default (parallel) run")
		outPath      = flag.String("o", "BENCH_tensor.json", "output JSON path")
	)
	flag.Parse()
	if *serialPath == "" || *parallelPath == "" {
		log.Fatal("both -serial and -parallel are required")
	}

	serial, err := parseBench(*serialPath)
	if err != nil {
		log.Fatal(err)
	}
	par, err := parseBench(*parallelPath)
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, 0, len(serial))
	for name := range serial {
		if _, ok := par[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	rep := Report{GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version()}
	for _, name := range names {
		s, p := serial[name], par[name]
		e := Entry{
			Name:            name,
			SerialNsPerOp:   s.nsPerOp,
			ParallelNsPerOp: p.nsPerOp,
			AllocsPerOp:     p.allocsPerOp,
		}
		if p.nsPerOp > 0 {
			e.Speedup = s.nsPerOp / p.nsPerOp
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark present in both runs")
	}

	f, err := os.Create(*outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks, GOMAXPROCS=%d)", *outPath, len(rep.Benchmarks), rep.GoMaxProcs)
}

type measurement struct {
	nsPerOp     float64
	allocsPerOp float64
}

// parseBench extracts "BenchmarkName-N  iters  X ns/op [...]" lines. The
// -N GOMAXPROCS suffix is stripped so serial and parallel runs line up.
func parseBench(path string) (map[string]measurement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := map[string]measurement{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		var m measurement
		ok := false
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.nsPerOp = v
				ok = true
			case "allocs/op":
				m.allocsPerOp = v
			}
		}
		if ok {
			out[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}
