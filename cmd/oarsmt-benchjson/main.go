// oarsmt-benchjson converts two `go test -bench` runs — a serial baseline
// (OARSMT_WORKERS=0) and a parallel run — into a machine-readable JSON
// report with before/after ns/op, the resulting speedup per benchmark, and
// a per-benchmark speedup floor that turns the report into a regression
// gate. `make bench` uses it to produce BENCH_tensor.json; `make
// bench-gate` re-runs the suite and verifies every speedup still clears
// the recorded floor.
//
// Usage:
//
//	oarsmt-benchjson -serial bench_serial.txt -parallel bench_parallel.txt \
//	    -o BENCH_tensor.json           # record (fails below recorded floors)
//	oarsmt-benchjson -gate -serial ... -parallel ... -o BENCH_tensor.json
//	                                   # verify only, never writes
//
// Recording is itself gated: when the output file already exists, the new
// speedups must clear its floors before the file is rewritten, so a
// regression cannot launder itself by re-recording. Floors ratchet — a new
// floor is max(old, 0.9 x measured speedup) capped at 1.0, so a kernel
// that has demonstrated a speedup may never fall below parity again.
// Speedups within -noise of 1.0 snap to exactly 1.0 first, on record and
// gate runs alike: benchmarks too small to parallelise (or any run on a
// single-core host, where serial and pooled execution are the same code
// path) wobble around parity and must neither accumulate spurious floors
// nor trip the gate with that wobble.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's before/after measurement.
type Entry struct {
	Name            string  `json:"name"`
	SerialNsPerOp   float64 `json:"serial_ns_per_op"`
	ParallelNsPerOp float64 `json:"parallel_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	AllocsPerOp     float64 `json:"allocs_per_op,omitempty"`
	// Floor is the gated minimum speedup: later runs fail when their
	// (noise-snapped) speedup drops below it.
	Floor float64 `json:"speedup_floor,omitempty"`
}

// Report is the whole BENCH_tensor.json document.
type Report struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-benchjson: ")

	var (
		serialPath   = flag.String("serial", "", "bench output of the OARSMT_WORKERS=0 run")
		parallelPath = flag.String("parallel", "", "bench output of the default (parallel) run")
		outPath      = flag.String("o", "BENCH_tensor.json", "output JSON path")
		gate         = flag.Bool("gate", false, "verify speedups against the floors in -o instead of rewriting it")
		noise        = flag.Float64("noise", 0.10, "snap speedups within this fraction of 1.0 to exactly 1.0")
		margin       = flag.Float64("margin", 0.10, "slack between a measured speedup and the floor it records")
	)
	flag.Parse()
	if *serialPath == "" || *parallelPath == "" {
		log.Fatal("both -serial and -parallel are required")
	}

	serial, err := parseBench(*serialPath)
	if err != nil {
		log.Fatal(err)
	}
	par, err := parseBench(*parallelPath)
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, 0, len(serial))
	for name := range serial {
		if _, ok := par[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	rep := Report{GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version()}
	for _, name := range names {
		s, p := serial[name], par[name]
		e := Entry{
			Name:            name,
			SerialNsPerOp:   s.nsPerOp,
			ParallelNsPerOp: p.nsPerOp,
			AllocsPerOp:     p.allocsPerOp,
		}
		if p.nsPerOp > 0 {
			e.Speedup = snap(s.nsPerOp/p.nsPerOp, *noise)
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark present in both runs")
	}

	prev := loadFloors(*outPath)
	if *gate {
		if len(prev) == 0 {
			log.Fatalf("%s has no recorded floors to gate against (run make bench first)", *outPath)
		}
		if n := checkFloors(rep.Benchmarks, prev); n > 0 {
			log.Fatalf("%d benchmark(s) below their recorded speedup floor", n)
		}
		log.Printf("gate ok: %d benchmarks at or above their floors", len(rep.Benchmarks))
		return
	}

	// Record mode: regressions against the existing floors abort before
	// anything is rewritten, then each floor ratchets upward.
	if n := checkFloors(rep.Benchmarks, prev); n > 0 {
		log.Fatalf("%d benchmark(s) below their recorded speedup floor; not rewriting %s", n, *outPath)
	}
	for i := range rep.Benchmarks {
		e := &rep.Benchmarks[i]
		floor := math.Min(1.0, e.Speedup*(1.0-*margin))
		if old, ok := prev[e.Name]; ok && old > floor {
			floor = old
		}
		e.Floor = round4(floor)
		e.Speedup = round4(e.Speedup)
	}

	f, err := os.Create(*outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks, GOMAXPROCS=%d)", *outPath, len(rep.Benchmarks), rep.GoMaxProcs)
}

// snap collapses speedups within noise of parity to exactly 1.0, so
// benchmarks that run serially either way cannot record a floor above or
// below 1.0 out of measurement wobble.
func snap(speedup, noise float64) float64 {
	if math.Abs(speedup-1.0) <= noise {
		return 1.0
	}
	return speedup
}

func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// loadFloors reads the recorded per-benchmark floors of an existing
// report; a missing or unreadable file simply means no floors yet.
func loadFloors(path string) map[string]float64 {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		log.Printf("warning: %s exists but is not a bench report (%v); ignoring its floors", path, err)
		return nil
	}
	out := map[string]float64{}
	for _, e := range rep.Benchmarks {
		if e.Floor > 0 {
			out[e.Name] = e.Floor
		}
	}
	return out
}

// checkFloors reports how many entries fall below their recorded floor,
// logging each violation.
func checkFloors(entries []Entry, floors map[string]float64) int {
	bad := 0
	for _, e := range entries {
		floor, ok := floors[e.Name]
		if !ok {
			continue
		}
		if e.Speedup < floor {
			log.Printf("REGRESSION %s: speedup %.3f below floor %.3f (serial %.0f ns/op, parallel %.0f ns/op)",
				e.Name, e.Speedup, floor, e.SerialNsPerOp, e.ParallelNsPerOp)
			bad++
		}
	}
	return bad
}

type measurement struct {
	nsPerOp     float64
	allocsPerOp float64
}

// parseBench extracts "BenchmarkName-N  iters  X ns/op [...]" lines. The
// -N GOMAXPROCS suffix is stripped so serial and parallel runs line up.
// Repeated measurements of one benchmark (-count > 1) keep the minimum
// ns/op: the fastest run has the least scheduler and cache interference,
// so minima are the most reproducible statistic to gate on.
func parseBench(path string) (map[string]measurement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := map[string]measurement{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		var m measurement
		ok := false
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.nsPerOp = v
				ok = true
			case "allocs/op":
				m.allocsPerOp = v
			}
		}
		if !ok {
			continue
		}
		if old, seen := out[name]; !seen || m.nsPerOp < old.nsPerOp {
			out[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}
