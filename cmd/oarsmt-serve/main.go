// oarsmt-serve is the routing daemon: an HTTP front end speaking the
// versioned wire protocol over the embeddable batch-inference service
// of internal/serve — or, with -coordinator, the cluster coordinator
// that shards requests across a fleet of such workers.
//
// Usage:
//
//	oarsmt-serve                          # single worker, embedded model, :8931
//	oarsmt-serve -addr :9000 -model selector.gob -queue 128 -batch 16
//	oarsmt-serve -coordinator -addr :8930 # cluster coordinator
//	oarsmt-serve -addr :9001 -register http://127.0.0.1:8930 -worker-id w1
//
// Endpoints (worker and coordinator are interchangeable to clients):
//
//	POST /v1/route    route a layout (wire.RouteRequest envelope)
//	GET  /v1/healthz  liveness (503 once draining)
//	GET  /v1/stats    counters (wire.Stats / wire.ClusterStats)
//	GET  /v1/metrics  Prometheus text exposition
//	POST /route, GET /healthz /stats /metrics   deprecated unversioned aliases
//	POST /v1/cluster/{register,lease,drain}     cluster plane (coordinator only)
//	/debug/pprof/     Go profiling endpoints (with -pprof)
//
// SIGINT/SIGTERM triggers a graceful drain: a registered worker first
// tells its coordinator to stop routing to it, then in-flight and
// queued requests are answered, new ones are refused, and the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"oarsmt/internal/cluster"
	"oarsmt/internal/models"
	"oarsmt/internal/selector"
	"oarsmt/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-serve: ")

	var (
		addr        = flag.String("addr", ":8931", "listen address")
		coordMode   = flag.Bool("coordinator", false, "run the cluster coordinator instead of a worker")
		modelPath   = flag.String("model", "", "trained selector model (default: embedded)")
		queueSize   = flag.Int("queue", 64, "job queue capacity (overflow returns 429)")
		maxBatch    = flag.Int("batch", 8, "max layouts per scheduler batch")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "how long a batch waits for more requests")
		cacheSize   = flag.Int("cache", 256, "routed-layout LRU capacity (negative disables)")
		storeDir    = flag.String("store-dir", "", "persistent route store directory (empty disables; restarts serve previously-routed layouts warm)")
		storeMax    = flag.Int("store-entries", 4096, "persistent route store live-record bound")
		storeFlush  = flag.Int("store-flush", 0, "routes per background store segment write (0 = store default)")
		maxVolume   = flag.Int("max-volume", 1<<20, "max Hanan-graph vertices per layout")
		timeout     = flag.Duration("timeout", 60*time.Second, "default per-request deadline (0 = none)")
		seq         = flag.Bool("sequential", false, "sequential (n-2 inference) selection mode")
		noGuard     = flag.Bool("no-guard", false, "disable guarded acceptance")
		f32         = flag.Bool("f32", false, "float32 inference storage (faster, last-bit off the float64 reference)")
		drainWait   = flag.Duration("drain", 30*time.Second, "max graceful-shutdown wait")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")

		// Worker-mode cluster membership.
		register  = flag.String("register", "", "coordinator base URL to join (empty: standalone worker)")
		workerID  = flag.String("worker-id", "", "stable ring identity (default: the advertise address)")
		advertise = flag.String("advertise", "", "base URL the coordinator reaches this worker at (default: http://127.0.0.1:<port>)")

		// Coordinator-mode knobs.
		leaseTTL    = flag.Duration("lease-ttl", 10*time.Second, "coordinator: worker lease duration")
		hedgeDelay  = flag.Duration("hedge-delay", 100*time.Millisecond, "coordinator: hedge a slow shard after this delay (negative disables)")
		stateDir    = flag.String("state-dir", "", "coordinator: persist membership here and restore it on restart (empty disables)")
		maxInflight = flag.Int("max-inflight", 256, "coordinator: admitted-forward bound, excess sheds with 429 (negative disables)")
		breakerN    = flag.Int("breaker-threshold", 5, "coordinator: consecutive failures tripping a worker's breaker (negative disables)")
		breakerCool = flag.Duration("breaker-cooldown", 3*time.Second, "coordinator: open-breaker cooldown before the half-open probe")
		replicate   = flag.Bool("replicate", false, "coordinator: install fresh routes on the key's next ring replica (warm failover)")
		replicaQ    = flag.Int("replica-queue", 64, "coordinator: bounded replication queue capacity")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}

	// preShutdown runs before the HTTP listener drains (cluster drain
	// notices); postShutdown runs after in-flight handlers finished
	// (closing the service itself).
	var handler http.Handler
	preShutdown := func(context.Context) {}
	postShutdown := func() {}
	if *coordMode {
		coord, err := cluster.New(cluster.Config{
			LeaseTTL:         *leaseTTL,
			HedgeDelay:       *hedgeDelay,
			ForwardTimeout:   *timeout,
			MaxVolume:        *maxVolume,
			StateDir:         *stateDir,
			MaxInflight:      *maxInflight,
			BreakerThreshold: *breakerN,
			BreakerCooldown:  *breakerCool,
			Replicate:        *replicate,
			ReplicaQueue:     *replicaQ,
		})
		if err != nil {
			log.Fatal(err)
		}
		handler = coord.Handler()
		postShutdown = coord.Close
		if *stateDir != "" {
			log.Printf("coordinator state: %s (%d workers restored)", *stateDir, coord.Stats().Restored)
		}
		log.Printf("coordinator listening on %s (lease %s, hedge %s, replicate %v)", ln.Addr(), *leaseTTL, *hedgeDelay, *replicate)
	} else {
		sel, err := loadSelector(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		svc, err := serve.NewService(serve.Config{
			Selector:            sel,
			QueueSize:           *queueSize,
			MaxBatch:            *maxBatch,
			BatchWindow:         *batchWindow,
			CacheSize:           *cacheSize,
			StoreDir:            *storeDir,
			StoreMaxEntries:     *storeMax,
			StoreFlushEvery:     *storeFlush,
			MaxVolume:           *maxVolume,
			DefaultTimeout:      *timeout,
			NoGuard:             *noGuard,
			SequentialInference: *seq,
			Float32:             *f32,
		})
		if err != nil {
			log.Fatal(err)
		}
		handler = svc.Handler()
		postShutdown = svc.Close

		if *register != "" {
			adv := *advertise
			if adv == "" {
				port := ln.Addr().(*net.TCPAddr).Port
				adv = "http://127.0.0.1:" + strconv.Itoa(port)
			}
			id := *workerID
			if id == "" {
				id = adv
			}
			agent, err := cluster.StartAgent(context.Background(), cluster.AgentConfig{
				Coordinator: *register,
				ID:          id,
				Advertise:   adv,
			})
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("registered with %s as %q (advertising %s)", *register, id, adv)
			preShutdown = func(ctx context.Context) {
				// Tell the coordinator first so new requests stop
				// arriving before the local queue drains.
				if err := agent.Drain(ctx); err != nil {
					log.Printf("drain notice: %v", err)
				}
			}
		}
		if *storeDir != "" {
			log.Printf("route store: %s (max %d entries)", *storeDir, *storeMax)
		}
		log.Printf("listening on %s (queue %d, batch %d, cache %d)",
			ln.Addr(), *queueSize, *maxBatch, *cacheSize)
	}

	if *pprofOn {
		// The service handler owns everything else; pprof mounts beside it
		// on an explicit mux (the binary never touches http.DefaultServeMux).
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	//oarsmt:allow rawgo(daemon plumbing: Serve blocks until shutdown and never touches routing state)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Print("draining...")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	preShutdown(shutdownCtx)
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	postShutdown()
	log.Print("drained, bye")
}

func loadSelector(path string) (*selector.Selector, error) {
	if path == "" {
		sel, err := models.New()
		if err != nil {
			return nil, errors.New("embedded model unavailable; pass -model selector.gob")
		}
		return sel, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return selector.Load(f)
}
