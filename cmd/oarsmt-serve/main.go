// oarsmt-serve is the routing daemon: an HTTP JSON front end over the
// embeddable batch-inference service of internal/serve.
//
// Usage:
//
//	oarsmt-serve                          # embedded model, :8931
//	oarsmt-serve -addr :9000 -model selector.gob -queue 128 -batch 16
//
// Endpoints:
//
//	POST /route    route a layout (layout JSON body; ?timeout=250ms, ?edges=1)
//	GET  /healthz  liveness (503 once draining)
//	GET  /stats    counters: queue depth, batch sizes, cache hit rate, p50/p99
//	GET  /metrics  Prometheus text exposition (service + process registries)
//	/debug/pprof/  Go profiling endpoints (with -pprof)
//
// SIGINT/SIGTERM triggers a graceful drain: in-flight and queued requests
// are answered, new ones are refused, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oarsmt/internal/models"
	"oarsmt/internal/selector"
	"oarsmt/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-serve: ")

	var (
		addr        = flag.String("addr", ":8931", "listen address")
		modelPath   = flag.String("model", "", "trained selector model (default: embedded)")
		queueSize   = flag.Int("queue", 64, "job queue capacity (overflow returns 429)")
		maxBatch    = flag.Int("batch", 8, "max layouts per scheduler batch")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "how long a batch waits for more requests")
		cacheSize   = flag.Int("cache", 256, "routed-layout LRU capacity (negative disables)")
		storeDir    = flag.String("store-dir", "", "persistent route store directory (empty disables; restarts serve previously-routed layouts warm)")
		storeMax    = flag.Int("store-entries", 4096, "persistent route store live-record bound")
		storeFlush  = flag.Int("store-flush", 0, "routes per background store segment write (0 = store default)")
		maxVolume   = flag.Int("max-volume", 1<<20, "max Hanan-graph vertices per layout")
		timeout     = flag.Duration("timeout", 60*time.Second, "default per-request deadline (0 = none)")
		seq         = flag.Bool("sequential", false, "sequential (n-2 inference) selection mode")
		noGuard     = flag.Bool("no-guard", false, "disable guarded acceptance")
		f32         = flag.Bool("f32", false, "float32 inference storage (faster, last-bit off the float64 reference)")
		drainWait   = flag.Duration("drain", 30*time.Second, "max graceful-shutdown wait")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	sel, err := loadSelector(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := serve.NewService(serve.Config{
		Selector:            sel,
		QueueSize:           *queueSize,
		MaxBatch:            *maxBatch,
		BatchWindow:         *batchWindow,
		CacheSize:           *cacheSize,
		StoreDir:            *storeDir,
		StoreMaxEntries:     *storeMax,
		StoreFlushEvery:     *storeFlush,
		MaxVolume:           *maxVolume,
		DefaultTimeout:      *timeout,
		NoGuard:             *noGuard,
		SequentialInference: *seq,
		Float32:             *f32,
	})
	if err != nil {
		log.Fatal(err)
	}

	handler := svc.Handler()
	if *pprofOn {
		// The service handler owns everything else; pprof mounts beside it
		// on an explicit mux (the binary never touches http.DefaultServeMux).
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	//oarsmt:allow rawgo(daemon plumbing: ListenAndServe blocks until shutdown and never touches routing state)
	go func() { serveErr <- srv.ListenAndServe() }()
	if *storeDir != "" {
		log.Printf("route store: %s (max %d entries)", *storeDir, *storeMax)
	}
	log.Printf("listening on %s (queue %d, batch %d, cache %d)",
		*addr, *queueSize, *maxBatch, *cacheSize)

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Print("draining...")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	svc.Close()
	log.Print("drained, bye")
}

func loadSelector(path string) (*selector.Selector, error) {
	if path == "" {
		sel, err := models.New()
		if err != nil {
			return nil, errors.New("embedded model unavailable; pass -model selector.gob")
		}
		return sel, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return selector.Load(f)
}
