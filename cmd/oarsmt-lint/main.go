// Command oarsmt-lint runs the repository's determinism & concurrency
// static-analysis suite (internal/lint) over the module.
//
// Usage:
//
//	oarsmt-lint [flags] [packages]
//
// Packages default to ./... and accept the go tool's directory patterns
// ("./internal/route", "./internal/..."). The process exits 0 when clean,
// 1 when findings were reported and 2 on usage or load errors, so it slots
// directly into make check and pre-commit hooks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"oarsmt/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		enable  = flag.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = flag.String("disable", "", "comma-separated analyzers to skip")
		list    = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: oarsmt-lint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oarsmt-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "oarsmt-lint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oarsmt-lint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oarsmt-lint:", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "oarsmt-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "oarsmt-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -enable / -disable flags against the suite.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	selected := lint.Analyzers()
	if enable != "" {
		selected = selected[:0]
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q in -enable", name)
			}
			selected = append(selected, a)
		}
	}
	if disable != "" {
		skip := make(map[string]bool)
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if lint.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q in -disable", name)
			}
			skip[name] = true
		}
		var kept []*lint.Analyzer
		for _, a := range selected {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		selected = kept
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return selected, nil
}
