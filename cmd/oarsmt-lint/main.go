// Command oarsmt-lint runs the repository's determinism & concurrency
// static-analysis suite (internal/lint) over the module.
//
// Usage:
//
//	oarsmt-lint [flags] [packages]
//
// Packages default to ./... and accept the go tool's directory patterns
// ("./internal/route", "./internal/...").
//
// # Exit codes
//
//	0  clean: no findings
//	1  findings were reported
//	2  usage error, or the module failed to load/type-check
//
// # Result cache
//
// Results are cached under <module root>/.lintcache, keyed by a content
// hash of each package's transitive source closure, so a warm run over an
// unchanged tree answers from disk without re-typechecking. -cache=off
// disables it (used by `make lint-cold`), -cache=DIR relocates it.
//
// # JSON schema
//
// -json emits a stable, machine-readable array on stdout, sorted by
// (file, line, col, analyzer, message):
//
//	[
//	  {
//	    "file": "internal/route/tree.go",   // relative to the module root
//	    "line": 42,                          // 1-based
//	    "col": 7,                            // 1-based, bytes
//	    "analyzer": "dettaint",              // or "allow" for annotation errors
//	    "message": "wall-clock read ..."
//	  }
//	]
//
// A clean run emits []. -sarif instead emits SARIF 2.1.0 for code-scanning
// uploads; both imply the same exit codes as the plain output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"oarsmt/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as a stable JSON array on stdout (see package doc for the schema)")
		sarifOut = flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
		enable   = flag.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable  = flag.String("disable", "", "comma-separated analyzers to skip")
		cacheArg = flag.String("cache", "", "result cache directory; \"off\" disables (default <module root>/.lintcache)")
		timing   = flag.Bool("timing", false, "report per-analyzer wall time and cache hit rates on stderr")
		list     = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: oarsmt-lint [flags] [packages]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(o, "\nexit codes:\n")
		fmt.Fprintf(o, "  0  clean: no findings\n")
		fmt.Fprintf(o, "  1  findings were reported\n")
		fmt.Fprintf(o, "  2  usage error, or the module failed to load\n")
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			kind := "package-local"
			if a.Interprocedural() {
				kind = "interprocedural"
			}
			fmt.Printf("%-12s %-15s %s\n", a.Name, kind, a.Doc)
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "oarsmt-lint: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oarsmt-lint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "oarsmt-lint:", err)
		return 2
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oarsmt-lint:", err)
		return 2
	}

	var cache *lint.Cache
	if *cacheArg != "off" {
		dir := *cacheArg
		if dir == "" {
			dir = filepath.Join(loader.ModuleRoot, ".lintcache")
		}
		cache, err = lint.OpenCache(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oarsmt-lint:", err)
			return 2
		}
	}

	var stats *lint.Stats
	if *timing {
		stats = lint.NewStats()
	}
	diags, cs, err := lint.RunCached(loader, cache, patterns, analyzers, stats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oarsmt-lint:", err)
		return 2
	}
	if *timing {
		printTiming(stats, cs, cache != nil)
	}

	switch {
	case *jsonOut:
		if err := writeJSON(os.Stdout, loader.ModuleRoot, diags); err != nil {
			fmt.Fprintln(os.Stderr, "oarsmt-lint:", err)
			return 2
		}
	case *sarifOut:
		if err := writeSARIF(os.Stdout, loader.ModuleRoot, analyzers, diags); err != nil {
			fmt.Fprintln(os.Stderr, "oarsmt-lint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "oarsmt-lint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relFile maps a diagnostic's absolute file path to module-root-relative
// slash form, the stable spelling both machine formats use.
func relFile(moduleRoot, file string) string {
	if rel, err := filepath.Rel(moduleRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// writeJSON emits the documented stable schema: a sorted array of
// {file, line, col, analyzer, message}, [] when clean.
func writeJSON(w *os.File, moduleRoot string, diags []lint.Diagnostic) error {
	type jsonDiag struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{relFile(moduleRoot, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeSARIF emits a minimal valid SARIF 2.1.0 log: one run, one rule per
// analyzer that was enabled, one result per finding, file URIs relative
// to SRCROOT (the module root).
func writeSARIF(w *os.File, moduleRoot string, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	type sarifRule struct {
		ID   string `json:"id"`
		Desc struct {
			Text string `json:"text"`
		} `json:"shortDescription"`
	}
	rules := make([]sarifRule, 0, len(analyzers)+1)
	addRule := func(id, doc string) {
		r := sarifRule{ID: id}
		r.Desc.Text = doc
		rules = append(rules, r)
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	addRule("allow", "malformed, unknown or unused //oarsmt:allow suppression annotations")
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	type region struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn"`
	}
	type location struct {
		Physical struct {
			Artifact struct {
				URI       string `json:"uri"`
				URIBaseID string `json:"uriBaseId"`
			} `json:"artifactLocation"`
			Region region `json:"region"`
		} `json:"physicalLocation"`
	}
	type result struct {
		RuleID  string `json:"ruleId"`
		Level   string `json:"level"`
		Message struct {
			Text string `json:"text"`
		} `json:"message"`
		Locations []location `json:"locations"`
	}
	results := make([]result, 0, len(diags))
	for _, d := range diags {
		var r result
		r.RuleID = d.Analyzer
		r.Level = "error"
		r.Message.Text = d.Message
		var loc location
		loc.Physical.Artifact.URI = relFile(moduleRoot, d.Pos.Filename)
		loc.Physical.Artifact.URIBaseID = "SRCROOT"
		loc.Physical.Region = region{StartLine: d.Pos.Line, StartColumn: d.Pos.Column}
		r.Locations = []location{loc}
		results = append(results, r)
	}

	log := map[string]any{
		"$schema": "https://json.schemastore.org/sarif-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]any{{
			"tool": map[string]any{
				"driver": map[string]any{
					"name":           "oarsmt-lint",
					"informationUri": "https://example.invalid/oarsmt",
					"rules":          rules,
				},
			},
			"originalUriBaseIds": map[string]any{
				"SRCROOT": map[string]any{"uri": "file://" + filepath.ToSlash(moduleRoot) + "/"},
			},
			"results": results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// printTiming reports per-analyzer wall time (slowest first) and cache
// effectiveness on stderr.
func printTiming(stats *lint.Stats, cs lint.CacheStats, cached bool) {
	var names []string
	for name := range stats.ByAnalyzer {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if stats.ByAnalyzer[names[i]] != stats.ByAnalyzer[names[j]] {
			return stats.ByAnalyzer[names[i]] > stats.ByAnalyzer[names[j]]
		}
		return names[i] < names[j]
	})
	fmt.Fprintln(os.Stderr, "oarsmt-lint timing:")
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "  %-12s %v\n", name, stats.ByAnalyzer[name].Round(10*time.Microsecond))
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "  (all analyzer work served from cache)")
	}
	if cached {
		prog := "off"
		switch {
		case cs.ProgramHit:
			prog = "hit"
		case cs.ProgramRan:
			prog = "miss"
		}
		fmt.Fprintf(os.Stderr, "  cache: %d/%d package entries hit, program entry %s\n",
			cs.LocalHits, cs.LocalHits+cs.LocalMisses, prog)
	}
}

// selectAnalyzers resolves the -enable / -disable flags against the suite.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	selected := lint.Analyzers()
	if enable != "" {
		selected = selected[:0]
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q in -enable", name)
			}
			selected = append(selected, a)
		}
	}
	if disable != "" {
		skip := make(map[string]bool)
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if lint.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q in -disable", name)
			}
			skip[name] = true
		}
		var kept []*lint.Analyzer
		for _, a := range selected {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		selected = kept
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return selected, nil
}
