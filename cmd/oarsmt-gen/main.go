// oarsmt-gen generates ML-OARSMT layout files in the repo's JSON format:
// random layouts from an explicit spec, layouts drawn from one of the
// paper's Table 1 test subsets, or the synthetic Table 4 public-benchmark
// equivalents.
//
// Usage:
//
//	oarsmt-gen -h 16 -v 16 -m 4 -pins 5 -obstacles 40 > layout.json
//	oarsmt-gen -subset T32 -seed 7 > t32.json
//	oarsmt-gen -benchmark rt1 > rt1.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"oarsmt/internal/layout"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oarsmt-gen: ")

	var (
		h      = flag.Int("h", 16, "horizontal grids")
		v      = flag.Int("v", 16, "vertical grids")
		m      = flag.Int("m", 4, "routing layers")
		pins   = flag.Int("pins", 5, "pin count")
		obst   = flag.Int("obstacles", 40, "obstacle run count")
		seed   = flag.Int64("seed", 1, "random seed")
		subset = flag.String("subset", "", "draw from a Table 1 subset (T32..T512)")
		bench  = flag.String("benchmark", "", "generate a Table 4 benchmark (rt1..rt5, ind1..ind3)")
		name   = flag.String("name", "", "layout name")
		pd     = flag.Float64("pd", 0, "preferred-direction penalty (>1 alternates H/V layers)")
	)
	flag.Parse()

	in, err := generate(*subset, *bench, *seed, layout.RandomSpec{
		H: *h, V: *v, MinM: *m, MaxM: *m,
		MinPins: *pins, MaxPins: *pins,
		MinObstacles: *obst, MaxObstacles: *obst,
		PreferredDirectionPenalty: *pd,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *name != "" {
		in.Name = *name
	}
	if err := layout.EncodeInstance(os.Stdout, in); err != nil {
		log.Fatal(err)
	}
}

func generate(subset, bench string, seed int64, spec layout.RandomSpec) (*layout.Instance, error) {
	switch {
	case bench != "":
		b, ok := layout.BenchmarkByName(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		return b.Generate()
	case subset != "":
		s, ok := layout.SubsetByName(subset)
		if !ok {
			return nil, fmt.Errorf("unknown subset %q", subset)
		}
		in, err := layout.Random(rand.New(rand.NewSource(seed)), s.Spec)
		if err != nil {
			return nil, err
		}
		in.Name = fmt.Sprintf("%s-seed%d", subset, seed)
		return in, nil
	default:
		in, err := layout.Random(rand.New(rand.NewSource(seed)), spec)
		if err != nil {
			return nil, err
		}
		in.Name = fmt.Sprintf("random-%dx%dx%d-seed%d", spec.H, spec.V, spec.MinM, seed)
		return in, nil
	}
}
