package wire

import "encoding/json"

// Coord3 is a grid coordinate in the JSON wire shape.
type Coord3 struct {
	H int `json:"h"`
	V int `json:"v"`
	M int `json:"m"`
}

// RouteRequest is the typed body of POST /v1/route. It replaces the
// legacy convention of a bare layout body plus ?timeout= / ?edges= query
// parameters: the options are fields now, so they version with the
// protocol.
type RouteRequest struct {
	// Layout is the layout to route, in the layout JSON format (grid or
	// geometric form — exactly the bytes the legacy endpoint took as its
	// whole body).
	Layout json.RawMessage `json:"layout"`
	// TimeoutMillis caps the server-side routing deadline for this
	// request; 0 leaves the server default in force.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
	// Edges asks for the full routed tree in the response.
	Edges bool `json:"edges,omitempty"`
}

// RouteResponse is the answer to one routing request. It is the exact
// shape internal/serve produces (the service aliases this type), plus the
// coordinator-set Worker/Hedged fields.
type RouteResponse struct {
	Name          string   `json:"name,omitempty"`
	Cost          float64  `json:"cost"`
	HorWirelength float64  `json:"horWirelength"`
	VerWirelength float64  `json:"verWirelength"`
	ViaWirelength float64  `json:"viaWirelength"`
	NumEdges      int      `json:"numEdges"`
	SteinerPoints []Coord3 `json:"steinerPoints"`
	UsedSteiner   bool     `json:"usedSteiner"`
	Proposed      int      `json:"proposed"`
	// Degraded reports that selector inference failed (after retries) and
	// the tree is the plain-OARMST fallback: a valid route without the
	// learned Steiner points. Degraded results are never cached, so the
	// service returns to normal answers as soon as inference recovers.
	Degraded bool `json:"degraded"`
	CacheHit bool `json:"cacheHit"`
	// StoreHit reports that the answer came from the persistent disk tier
	// (and was promoted into the memory cache); CacheHit is also set.
	StoreHit      bool    `json:"storeHit,omitempty"`
	BatchSize     int     `json:"batchSize"`
	ElapsedMillis float64 `json:"elapsedMillis"`
	// Edges is the full routed tree; populated only when requested.
	Edges [][2]Coord3 `json:"edges,omitempty"`

	// Worker is the shard that served the request; set by the cluster
	// coordinator, empty when talking to a worker directly.
	Worker string `json:"worker,omitempty"`
	// Hedged reports that the answer came from a hedged retry to a
	// second replica after the primary shard was slow.
	Hedged bool `json:"hedged,omitempty"`
}

// Stats is one worker's point-in-time counter snapshot (GET /v1/stats).
type Stats struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	QueueDepth    int     `json:"queueDepth"`
	QueueCapacity int     `json:"queueCapacity"`
	// CacheEntries / CacheEvictions describe the memory tier; the Store*
	// fields mirror the persistent disk tier (zero when -store-dir is
	// unset), so /stats shows both tiers' sizes side by side.
	CacheEntries   int   `json:"cacheEntries"`
	CacheEvictions int64 `json:"cacheEvictions"`

	StoreEntries       int   `json:"storeEntries,omitempty"`
	StoreSegments      int   `json:"storeSegments,omitempty"`
	StoreHits          int64 `json:"storeHits,omitempty"`
	StoreMisses        int64 `json:"storeMisses,omitempty"`
	StoreServed        int64 `json:"storeServed,omitempty"`
	StoreWrites        int64 `json:"storeWrites,omitempty"`
	StoreCompactions   int64 `json:"storeCompactions,omitempty"`
	StoreInvalidations int64 `json:"storeInvalidations,omitempty"`
	StoreEvictions     int64 `json:"storeEvictions,omitempty"`

	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Rejected    int64 `json:"rejected"`
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	Inferences  int64 `json:"inferences"`
	Degraded    int64 `json:"degraded"`
	Retries     int64 `json:"retries"`

	Batches      int64   `json:"batches"`
	BatchedJobs  int64   `json:"batchedJobs"`
	MeanBatch    float64 `json:"meanBatch"`
	MaxBatch     int64   `json:"maxBatch"`
	CacheHitRate float64 `json:"cacheHitRate"`

	P50Millis float64 `json:"p50Millis"`
	P99Millis float64 `json:"p99Millis"`
}

// RegisterRequest announces a worker to the coordinator (POST
// /v1/cluster/register). Re-registering an already-known ID renews its
// lease and updates its address.
type RegisterRequest struct {
	// ID is the worker's stable identity on the hash ring; it must not
	// change across re-registrations or the shard's cache affinity is
	// lost.
	ID string `json:"id"`
	// Addr is the worker's base URL ("http://host:port") as reachable
	// from the coordinator.
	Addr string `json:"addr"`
	// Proto is the protocol version the worker speaks.
	Proto int `json:"proto"`
}

// RegisterResponse carries the lease the coordinator granted.
type RegisterResponse struct {
	// TTLMillis is the lease duration; the worker must renew within it
	// (conventionally every TTL/3) or be dropped from the ring.
	TTLMillis int64 `json:"ttlMillis"`
}

// LeaseRequest renews a worker's lease (POST /v1/cluster/lease).
type LeaseRequest struct {
	ID string `json:"id"`
}

// LeaseResponse acknowledges a renewal.
type LeaseResponse struct {
	TTLMillis int64 `json:"ttlMillis"`
}

// DrainRequest announces that a worker is shutting down gracefully (POST
// /v1/cluster/drain): the coordinator stops routing new requests to it
// immediately while in-flight ones finish on the worker's own drain
// path.
type DrainRequest struct {
	ID string `json:"id"`
}

// WorkerInfo is one worker's row in the coordinator's stats.
type WorkerInfo struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	Draining bool   `json:"draining,omitempty"`
	// LeaseMillis is the time remaining on the worker's lease.
	LeaseMillis int64 `json:"leaseMillis"`
	Forwards    int64 `json:"forwards"`
	Errors      int64 `json:"errors,omitempty"`
}

// ClusterStats is the coordinator's point-in-time snapshot (GET /v1/stats
// on the coordinator).
type ClusterStats struct {
	UptimeSeconds float64      `json:"uptimeSeconds"`
	Workers       []WorkerInfo `json:"workers"`

	Forwards  int64 `json:"forwards"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedgeWins"`
	Retries   int64 `json:"retries"`
	Expired   int64 `json:"expired"`
	Drained   int64 `json:"drained"`

	P50Millis float64 `json:"p50Millis"`
	P99Millis float64 `json:"p99Millis"`
}
