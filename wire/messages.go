package wire

import "encoding/json"

// Coord3 is a grid coordinate in the JSON wire shape.
type Coord3 struct {
	H int `json:"h"`
	V int `json:"v"`
	M int `json:"m"`
}

// RouteRequest is the typed body of POST /v1/route. It replaces the
// legacy convention of a bare layout body plus ?timeout= / ?edges= query
// parameters: the options are fields now, so they version with the
// protocol.
type RouteRequest struct {
	// Layout is the layout to route, in the layout JSON format (grid or
	// geometric form — exactly the bytes the legacy endpoint took as its
	// whole body).
	Layout json.RawMessage `json:"layout"`
	// TimeoutMillis caps the server-side routing deadline for this
	// request; 0 leaves the server default in force.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
	// Edges asks for the full routed tree in the response.
	Edges bool `json:"edges,omitempty"`
}

// RouteResponse is the answer to one routing request. It is the exact
// shape internal/serve produces (the service aliases this type), plus the
// coordinator-set Worker/Hedged fields.
type RouteResponse struct {
	Name          string   `json:"name,omitempty"`
	Cost          float64  `json:"cost"`
	HorWirelength float64  `json:"horWirelength"`
	VerWirelength float64  `json:"verWirelength"`
	ViaWirelength float64  `json:"viaWirelength"`
	NumEdges      int      `json:"numEdges"`
	SteinerPoints []Coord3 `json:"steinerPoints"`
	UsedSteiner   bool     `json:"usedSteiner"`
	Proposed      int      `json:"proposed"`
	// Degraded reports that selector inference failed (after retries) and
	// the tree is the plain-OARMST fallback: a valid route without the
	// learned Steiner points. Degraded results are never cached, so the
	// service returns to normal answers as soon as inference recovers.
	Degraded bool `json:"degraded"`
	CacheHit bool `json:"cacheHit"`
	// StoreHit reports that the answer came from the persistent disk tier
	// (and was promoted into the memory cache); CacheHit is also set.
	StoreHit      bool    `json:"storeHit,omitempty"`
	BatchSize     int     `json:"batchSize"`
	ElapsedMillis float64 `json:"elapsedMillis"`
	// Edges is the full routed tree; populated only when requested.
	Edges [][2]Coord3 `json:"edges,omitempty"`

	// Worker is the shard that served the request; set by the cluster
	// coordinator, empty when talking to a worker directly.
	Worker string `json:"worker,omitempty"`
	// Hedged reports that the answer came from a hedged retry to a
	// second replica after the primary shard was slow.
	Hedged bool `json:"hedged,omitempty"`
}

// ReplicateRequest installs a finished route into a worker's cache tiers
// (POST /v1/replicate). The coordinator sends it to the next distinct
// ring replica after a fresh non-degraded answer, so a shard's warm set
// survives the death of its owner. The receiving worker re-validates the
// tree against the layout before installing; a response that does not
// validate is rejected, never served.
type ReplicateRequest struct {
	// Layout is the routed layout, in the layout JSON format (the same
	// bytes RouteRequest.Layout carried).
	Layout json.RawMessage `json:"layout"`
	// Response is the answer to install. It must carry Edges (the full
	// routed tree) and must not be Degraded.
	Response RouteResponse `json:"response"`
}

// ReplicateResponse acknowledges an install.
type ReplicateResponse struct {
	// Installed is false when the worker declined the entry (already
	// cached); a validation failure is an error, not a decline.
	Installed bool `json:"installed"`
}

// Stats is one worker's point-in-time counter snapshot (GET /v1/stats).
type Stats struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	QueueDepth    int     `json:"queueDepth"`
	QueueCapacity int     `json:"queueCapacity"`
	// CacheEntries / CacheEvictions describe the memory tier; the Store*
	// fields mirror the persistent disk tier (zero when -store-dir is
	// unset), so /stats shows both tiers' sizes side by side.
	CacheEntries   int   `json:"cacheEntries"`
	CacheEvictions int64 `json:"cacheEvictions"`

	StoreEntries       int   `json:"storeEntries,omitempty"`
	StoreSegments      int   `json:"storeSegments,omitempty"`
	StoreHits          int64 `json:"storeHits,omitempty"`
	StoreMisses        int64 `json:"storeMisses,omitempty"`
	StoreServed        int64 `json:"storeServed,omitempty"`
	StoreWrites        int64 `json:"storeWrites,omitempty"`
	StoreCompactions   int64 `json:"storeCompactions,omitempty"`
	StoreInvalidations int64 `json:"storeInvalidations,omitempty"`
	StoreEvictions     int64 `json:"storeEvictions,omitempty"`

	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Rejected    int64 `json:"rejected"`
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	Inferences  int64 `json:"inferences"`
	Degraded    int64 `json:"degraded"`
	Retries     int64 `json:"retries"`

	// Replicated / ReplicateRejected count /v1/replicate installs the
	// worker accepted and declined-or-refused.
	Replicated        int64 `json:"replicated,omitempty"`
	ReplicateRejected int64 `json:"replicateRejected,omitempty"`

	Batches      int64   `json:"batches"`
	BatchedJobs  int64   `json:"batchedJobs"`
	MeanBatch    float64 `json:"meanBatch"`
	MaxBatch     int64   `json:"maxBatch"`
	CacheHitRate float64 `json:"cacheHitRate"`

	P50Millis float64 `json:"p50Millis"`
	P99Millis float64 `json:"p99Millis"`
}

// RegisterRequest announces a worker to the coordinator (POST
// /v1/cluster/register). Re-registering an already-known ID renews its
// lease and updates its address.
type RegisterRequest struct {
	// ID is the worker's stable identity on the hash ring; it must not
	// change across re-registrations or the shard's cache affinity is
	// lost.
	ID string `json:"id"`
	// Addr is the worker's base URL ("http://host:port") as reachable
	// from the coordinator.
	Addr string `json:"addr"`
	// Proto is the protocol version the worker speaks.
	Proto int `json:"proto"`
}

// RegisterResponse carries the lease the coordinator granted.
type RegisterResponse struct {
	// TTLMillis is the lease duration; the worker must renew within it
	// (conventionally every TTL/3) or be dropped from the ring.
	TTLMillis int64 `json:"ttlMillis"`
}

// LeaseRequest renews a worker's lease (POST /v1/cluster/lease).
type LeaseRequest struct {
	ID string `json:"id"`
}

// LeaseResponse acknowledges a renewal.
type LeaseResponse struct {
	TTLMillis int64 `json:"ttlMillis"`
}

// DrainRequest announces that a worker is shutting down gracefully (POST
// /v1/cluster/drain): the coordinator stops routing new requests to it
// immediately while in-flight ones finish on the worker's own drain
// path.
type DrainRequest struct {
	ID string `json:"id"`
}

// WorkerInfo is one worker's row in the coordinator's stats.
type WorkerInfo struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	Draining bool   `json:"draining,omitempty"`
	// LeaseMillis is the time remaining on the worker's lease.
	LeaseMillis int64 `json:"leaseMillis"`
	Forwards    int64 `json:"forwards"`
	Errors      int64 `json:"errors,omitempty"`
	// Breaker is the worker's circuit-breaker state: "closed",
	// "open", or "half-open" (empty when breakers are disabled).
	Breaker string `json:"breaker,omitempty"`
	// InFlight / Hedges are the worker's live request counts: forwards
	// currently outstanding and hedged attempts currently outstanding.
	InFlight int64 `json:"inFlight"`
	Hedges   int64 `json:"hedges,omitempty"`
}

// ClusterStats is the coordinator's point-in-time snapshot (GET /v1/stats
// on the coordinator).
type ClusterStats struct {
	UptimeSeconds float64      `json:"uptimeSeconds"`
	Workers       []WorkerInfo `json:"workers"`

	Forwards  int64 `json:"forwards"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedgeWins"`
	Retries   int64 `json:"retries"`
	Expired   int64 `json:"expired"`
	Drained   int64 `json:"drained"`

	// InFlight is the number of forwards currently admitted; Shed counts
	// requests rejected at the admission bound (HTTP 429).
	InFlight int64 `json:"inFlight"`
	Shed     int64 `json:"shed,omitempty"`
	// BreakerOpens counts breaker trips (closed→open transitions).
	BreakerOpens int64 `json:"breakerOpens,omitempty"`
	// Replicated / ReplicationErrors / ReplicationDropped describe the
	// replica fan-out: installs delivered, installs that failed, and
	// installs dropped because the bounded queue was full.
	Replicated         int64 `json:"replicated,omitempty"`
	ReplicationErrors  int64 `json:"replicationErrors,omitempty"`
	ReplicationDropped int64 `json:"replicationDropped,omitempty"`
	// Restored is the number of workers rebuilt from the persisted
	// coordinator state at the last restart.
	Restored int64 `json:"restored,omitempty"`

	P50Millis float64 `json:"p50Millis"`
	P99Millis float64 `json:"p99Millis"`
}
