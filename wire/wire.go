// Package wire is the typed, versioned HTTP protocol of the oarsmt
// serving stack: the request/response/stats/error/cluster message shapes,
// the `/v1/` path constants, the sentinel-error code table, and the
// protocol-version negotiation header.
//
// It is the single source of truth for what crosses the network. The
// serving daemon (internal/serve), the cluster coordinator
// (internal/cluster), the public client package (client), and every
// in-repo tool (oarsmt-smoke, oarsmt-loadgen) all speak these types;
// nothing else in the repository builds serve JSON by hand.
//
// # Versioning
//
// Every versioned endpoint lives under the PathPrefix ("/v1"). A client
// advertises the protocol version it speaks with the ProtoHeader request
// header; servers accept any version in [MinVersion, Version] and reject
// others with ErrUnsupportedProto (HTTP 400, code "unsupported_proto").
// Responses always carry the server's own version in the same header, so
// a client can detect a newer server. The unversioned legacy paths
// (LegacyPathRoute, ...) predate this package and survive as thin
// deprecated aliases of the /v1 handlers; see API.md for the
// deprecation policy.
package wire

import (
	"fmt"
	"net/http"
	"strconv"

	"oarsmt/internal/errs"
)

// Version is the protocol version this tree speaks; MinVersion is the
// oldest version servers still accept. They are equal until a breaking
// revision ships.
const (
	Version    = 1
	MinVersion = 1
)

// ProtoHeader carries the protocol version: the client's spoken version
// on requests, the server's own version on responses.
const ProtoHeader = "X-Oarsmt-Proto"

// Versioned endpoint paths.
const (
	PathPrefix  = "/v1"
	PathRoute   = "/v1/route"
	PathHealthz = "/v1/healthz"
	PathStats   = "/v1/stats"
	PathMetrics = "/v1/metrics"

	// PathReplicate installs an already-routed answer into a worker's
	// cache tiers (write-through replication from the coordinator).
	PathReplicate = "/v1/replicate"

	// Cluster-plane paths, served by the coordinator.
	PathRegister = "/v1/cluster/register"
	PathLease    = "/v1/cluster/lease"
	PathDrain    = "/v1/cluster/drain"
)

// Legacy unversioned paths, kept as deprecated aliases of the /v1
// handlers. New code must use the versioned paths.
const (
	LegacyPathRoute   = "/route"
	LegacyPathHealthz = "/healthz"
	LegacyPathStats   = "/stats"
	LegacyPathMetrics = "/metrics"
)

// DeprecationHeader is set on responses served from a legacy unversioned
// path; its value names the versioned replacement.
const DeprecationHeader = "X-Oarsmt-Deprecated"

// Sentinels of the wire layer itself. They complete the internal/errs
// table for conditions that only exist at the serving surface.
var (
	// ErrClosed reports a service that has begun draining; resubmit
	// elsewhere (HTTP 503, code "closed").
	ErrClosed = errs.ErrClosed
	// ErrTooLarge reports a layout above the service's volume budget
	// (HTTP 413, code "too_large").
	ErrTooLarge = errs.ErrTooLarge
	// ErrUnsupportedProto reports a protocol version outside the
	// server's accepted range (HTTP 400, code "unsupported_proto").
	ErrUnsupportedProto = errs.ErrUnsupportedProto
)

// CheckProto validates the protocol version a request advertises. A
// missing header is accepted as the current version (the header is
// optional for hand-written clients); a malformed or out-of-range one is
// an ErrUnsupportedProto.
func CheckProto(r *http.Request) error {
	h := r.Header.Get(ProtoHeader)
	if h == "" {
		return nil
	}
	v, err := strconv.Atoi(h)
	if err != nil {
		return fmt.Errorf("%w: malformed %s header %q", ErrUnsupportedProto, ProtoHeader, h)
	}
	if v < MinVersion || v > Version {
		return fmt.Errorf("%w: version %d, server accepts [%d, %d]",
			ErrUnsupportedProto, v, MinVersion, Version)
	}
	return nil
}

// SetProto stamps the server's protocol version on a response (or the
// client's spoken version on a request).
func SetProto(h http.Header) { h.Set(ProtoHeader, strconv.Itoa(Version)) }
