package wire

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"oarsmt/internal/errs"
)

func reqWithProto(t *testing.T, proto string) *http.Request {
	t.Helper()
	r, err := http.NewRequest(http.MethodPost, "/v1/route", nil)
	if err != nil {
		t.Fatal(err)
	}
	if proto != "" {
		r.Header.Set(ProtoHeader, proto)
	}
	return r
}

func TestCheckProto(t *testing.T) {
	for _, tc := range []struct {
		proto string
		ok    bool
	}{
		{"", true}, // pre-protocol clients send no header
		{strconv.Itoa(Version), true},
		{strconv.Itoa(MinVersion), true},
		{strconv.Itoa(Version + 1), false},
		{strconv.Itoa(MinVersion - 1), false},
		{"banana", false},
	} {
		err := CheckProto(reqWithProto(t, tc.proto))
		if tc.ok && err != nil {
			t.Errorf("CheckProto(%q) = %v, want nil", tc.proto, err)
		}
		if !tc.ok && !errors.Is(err, ErrUnsupportedProto) {
			t.Errorf("CheckProto(%q) = %v, want ErrUnsupportedProto", tc.proto, err)
		}
	}
}

// TestCodeTableComplete: every sentinel in the internal/errs table has a
// wire code, codes are unique, and Code/Sentinel invert each other.
func TestCodeTableComplete(t *testing.T) {
	sentinels := []error{
		errs.ErrTimeout, errs.ErrQueueFull, errs.ErrInvalidLayout,
		errs.ErrNoPath, errs.ErrInvalidModel, errs.ErrInternal,
		errs.ErrTransient, errs.ErrInvalidTree, errs.ErrInvalidConfig,
		errs.ErrClosed, errs.ErrTooLarge, errs.ErrUnsupportedProto,
	}
	if len(codeTable) != len(sentinels) {
		t.Fatalf("code table has %d entries, errs table has %d sentinels", len(codeTable), len(sentinels))
	}
	seen := map[string]bool{}
	for _, e := range codeTable {
		if seen[e.code] {
			t.Errorf("duplicate wire code %q", e.code)
		}
		seen[e.code] = true
	}
	for _, s := range sentinels {
		code := Code(fmt.Errorf("wrapped: %w", s))
		if code == "" {
			t.Errorf("sentinel %v has no wire code", s)
			continue
		}
		if got := Sentinel(code); !errors.Is(got, s) {
			t.Errorf("Sentinel(Code(%v)) = %v, identity lost", s, got)
		}
	}
	if Code(errors.New("plain")) != "" {
		t.Error("unclassified error got a wire code")
	}
	if Sentinel("no_such_code") != nil {
		t.Error("unknown code resolved to a sentinel")
	}
}

// TestWriteErrorRoundTrip: WriteError → AsError preserves the sentinel,
// the status, and the Retry-After convention on backpressure classes.
func TestWriteErrorRoundTrip(t *testing.T) {
	for _, e := range codeTable {
		rec := httptest.NewRecorder()
		WriteError(rec, fmt.Errorf("ctx: %w", e.sentinel))
		if rec.Code != e.status {
			t.Errorf("%s: status %d, want %d", e.code, rec.Code, e.status)
		}
		if got := rec.Header().Get("Retry-After") != ""; got != e.retryAfter {
			t.Errorf("%s: Retry-After present=%v, want %v", e.code, got, e.retryAfter)
		}
		if rec.Header().Get(ProtoHeader) != strconv.Itoa(Version) {
			t.Errorf("%s: error response missing proto header", e.code)
		}
		back := AsError(rec.Code, rec.Body.Bytes())
		if !errors.Is(back, e.sentinel) {
			t.Errorf("%s: AsError = %v, lost the sentinel", e.code, back)
		}
	}
}

// TestAsErrorLegacyFallback: a pre-protocol body (no code field) still
// maps the unambiguous statuses onto sentinels.
func TestAsErrorLegacyFallback(t *testing.T) {
	for _, tc := range []struct {
		status int
		want   error
	}{
		{http.StatusTooManyRequests, errs.ErrQueueFull},
		{http.StatusGatewayTimeout, errs.ErrTimeout},
		{http.StatusServiceUnavailable, errs.ErrTransient},
		{http.StatusInternalServerError, errs.ErrInternal},
	} {
		err := AsError(tc.status, []byte(`{"error":"legacy"}`))
		if !errors.Is(err, tc.want) {
			t.Errorf("AsError(%d) = %v, want %v", tc.status, err, tc.want)
		}
	}
	if err := AsError(http.StatusTeapot, []byte(`nonsense`)); err == nil {
		t.Error("unmapped status must still be an error")
	}
}
