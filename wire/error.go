package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"oarsmt/internal/errs"
)

// Error is the JSON body of every non-2xx response. Message keeps the
// legacy "error" field name so pre-protocol clients still decode it; Code
// is the machine-readable sentinel code new clients match on.
type Error struct {
	Code    string `json:"code,omitempty"`
	Message string `json:"error"`
}

// codeEntry binds one sentinel to its wire code and HTTP status. The
// table is ordered: Code walks it front to back with errors.Is, so more
// specific sentinels (ErrQueueFull, ErrClosed) come before the broad
// retryability marker ErrTransient that injected faults also wrap.
type codeEntry struct {
	code     string
	sentinel error
	status   int
	// retryAfter marks backpressure answers that should carry a
	// Retry-After header.
	retryAfter bool
}

var codeTable = []codeEntry{
	{"queue_full", errs.ErrQueueFull, http.StatusTooManyRequests, true},
	{"closed", errs.ErrClosed, http.StatusServiceUnavailable, true},
	{"too_large", errs.ErrTooLarge, http.StatusRequestEntityTooLarge, false},
	{"unsupported_proto", errs.ErrUnsupportedProto, http.StatusBadRequest, false},
	{"timeout", errs.ErrTimeout, http.StatusGatewayTimeout, false},
	{"invalid_layout", errs.ErrInvalidLayout, http.StatusBadRequest, false},
	{"invalid_model", errs.ErrInvalidModel, http.StatusUnprocessableEntity, false},
	{"invalid_tree", errs.ErrInvalidTree, http.StatusUnprocessableEntity, false},
	{"invalid_config", errs.ErrInvalidConfig, http.StatusBadRequest, false},
	{"no_path", errs.ErrNoPath, http.StatusUnprocessableEntity, false},
	{"internal", errs.ErrInternal, http.StatusInternalServerError, false},
	{"transient", errs.ErrTransient, http.StatusServiceUnavailable, true},
}

// Code returns the wire code of the first sentinel the error matches, or
// "" when it matches none (an unclassified error; servers send it as
// "internal"-free plain message, clients surface it unwrapped).
func Code(err error) string {
	for _, e := range codeTable {
		if errors.Is(err, e.sentinel) {
			return e.code
		}
	}
	// A bare context cancellation is the caller's own doing; report it as
	// a timeout-class condition the way the legacy status mapping did.
	if errors.Is(err, context.Canceled) {
		return "timeout"
	}
	return ""
}

// Sentinel returns the canonical sentinel for a wire code, or nil for an
// unknown code.
func Sentinel(code string) error {
	for _, e := range codeTable {
		if e.code == code {
			return e.sentinel
		}
	}
	return nil
}

// HTTPStatus maps an error to its response status per the API.md table;
// errors matching no sentinel are 422 (the request was understood but not
// servable), matching the legacy behaviour.
func HTTPStatus(err error) int {
	for _, e := range codeTable {
		if errors.Is(err, e.sentinel) {
			return e.status
		}
	}
	if errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}

// WriteError writes the error response for err: the mapped status, the
// Retry-After header on backpressure classes, the protocol version
// header, and the JSON Error body with the sentinel code.
func WriteError(w http.ResponseWriter, err error) {
	status := http.StatusUnprocessableEntity
	retryAfter := false
	code := ""
	for _, e := range codeTable {
		if errors.Is(err, e.sentinel) {
			status, retryAfter, code = e.status, e.retryAfter, e.code
			break
		}
	}
	if code == "" && errors.Is(err, context.Canceled) {
		status, code = http.StatusGatewayTimeout, "timeout"
	}
	if retryAfter {
		w.Header().Set("Retry-After", "1")
	}
	WriteErrorStatus(w, status, code, err.Error())
}

// WriteErrorStatus writes an explicit status/code/message error body; the
// handler-level helper for conditions that are not sentinel-backed (bad
// query parameters, oversized bodies).
func WriteErrorStatus(w http.ResponseWriter, status int, code, msg string) {
	SetProto(w.Header())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(Error{Code: code, Message: msg})
}

// AsError reconstructs the client-side error for a non-2xx response: a
// known code wraps its sentinel (so errors.Is round-trips across the
// wire), an unknown or absent code falls back to a status-based guess for
// pre-protocol servers, and anything else surfaces as a plain error.
func AsError(status int, body []byte) error {
	var e Error
	if err := json.Unmarshal(body, &e); err != nil || e.Message == "" {
		e.Message = fmt.Sprintf("HTTP %d: %s", status, string(body))
	}
	code := e.Code
	if code == "" {
		code = codeForStatus(status)
	}
	if s := Sentinel(code); s != nil {
		return fmt.Errorf("%w: %s", s, e.Message)
	}
	return fmt.Errorf("server error (HTTP %d): %s", status, e.Message)
}

// codeForStatus guesses the sentinel code for a legacy response carrying
// no code field. The guess inverts the unambiguous half of the status
// table; ambiguous statuses (400, 422, 503) map to their most common
// cause.
func codeForStatus(status int) string {
	switch status {
	case http.StatusTooManyRequests:
		return "queue_full"
	case http.StatusGatewayTimeout:
		return "timeout"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusBadRequest:
		return "invalid_layout"
	case http.StatusInternalServerError:
		return "internal"
	case http.StatusServiceUnavailable:
		return "transient"
	default:
		return ""
	}
}
