package oarsmt

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	sel, err := NewSelector(1, UNetConfig{InChannels: 7, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	in, err := RandomInstance(2, RandomSpec{
		H: 8, V: 8, MinM: 2, MaxM: 2, MinPins: 5, MaxPins: 5, MinObstacles: 5, MaxObstacles: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(sel)
	res, err := r.Route(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(in.Graph, in.Pins); err != nil {
		t.Fatal(err)
	}
	plain, err := PlainOARMST(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.Cost > plain.Cost {
		t.Error("guarded router must not exceed the plain OARMST")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	in, err := RandomInstance(3, RandomSpec{
		H: 8, V: 8, MinM: 2, MaxM: 2, MinPins: 4, MaxPins: 4, MinObstacles: 4, MaxObstacles: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []BaselineAlgorithm{Lin08, Liu14, Lin18} {
		tree, err := RouteBaseline(alg, in)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := tree.Validate(in.Graph, in.Pins); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

func TestPublicAPIModelRoundTrip(t *testing.T) {
	sel, err := NewSelector(4, UNetConfig{InChannels: 7, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := SaveModel(sel, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Net.Config != sel.Net.Config {
		t.Error("model config changed in round trip")
	}
	if _, err := LoadModel(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing model should fail")
	}
	// ReadModel through a stream.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := ReadModel(f); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPITrainAndEpisode(t *testing.T) {
	sel, err := NewSelector(5, UNetConfig{InChannels: 7, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := TrainConfig{
		LayoutsPerSize: 1, MinPins: 3, MaxPins: 3, CurriculumStages: 0,
		MCTS: MCTSConfig{Iterations: 4}, BatchSize: 8, EpochsPerStage: 1, LR: 1e-3, Seed: 1,
	}
	if err := Train(sel, cfg, 1); err != nil {
		t.Fatal(err)
	}
	in, err := RandomInstance(6, RandomSpec{
		H: 6, V: 6, MinM: 2, MaxM: 2, MinPins: 4, MaxPins: 4, MinObstacles: 2, MaxObstacles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SearchEpisode(sel, in, MCTSConfig{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sample.Label) != in.Graph.NumVertices() {
		t.Error("episode label size wrong")
	}
}

func TestPublicAPIBenchmarks(t *testing.T) {
	in, err := Benchmark("ind1")
	if err != nil {
		t.Fatal(err)
	}
	if in.Graph.H != 33 || in.Graph.V != 28 || in.Graph.M != 4 {
		t.Errorf("ind1 dims = %dx%dx%d", in.Graph.H, in.Graph.V, in.Graph.M)
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestPretrainedSelectorUsable(t *testing.T) {
	sel, err := PretrainedSelector()
	if err != nil {
		t.Fatal(err)
	}
	in, err := RandomInstance(9, RandomSpec{
		H: 10, V: 10, MinM: 2, MaxM: 2, MinPins: 4, MaxPins: 4, MinObstacles: 4, MaxObstacles: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewRouter(sel).Route(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(in.Graph, in.Pins); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultUNetConfig(t *testing.T) {
	cfg := DefaultUNetConfig()
	if cfg.InChannels != 7 {
		t.Errorf("input channels = %d, want the 7-feature encoding", cfg.InChannels)
	}
	if _, err := NewSelector(1, cfg); err != nil {
		t.Errorf("default config unusable: %v", err)
	}
}

func TestPreferredDirectionThroughPublicAPI(t *testing.T) {
	in, err := RandomInstance(10, RandomSpec{
		H: 8, V: 8, MinM: 2, MaxM: 2, MinPins: 3, MaxPins: 3,
		MinObstacles: 2, MaxObstacles: 2,
		PreferredDirectionPenalty: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.Graph.HScale == nil {
		t.Fatal("preferred directions not installed")
	}
	tree, err := RouteBaseline(Lin18, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(in.Graph, in.Pins); err != nil {
		t.Fatal(err)
	}
}

func TestRouteNetsPublicAPI(t *testing.T) {
	in, err := RandomInstance(11, RandomSpec{
		H: 10, V: 10, MinM: 2, MaxM: 2, MinPins: 2, MaxPins: 2, MinObstacles: 0, MaxObstacles: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := in.Graph
	nets := []Net{
		{Name: "a", Pins: []VertexID{g.Index(0, 0, 0), g.Index(9, 0, 0)}},
		{Name: "b", Pins: []VertexID{g.Index(0, 9, 1), g.Index(9, 9, 1), g.Index(5, 5, 1)}},
	}
	res, err := RouteNets(context.Background(), g, nets, nil, MultiNetConfig{MaxRipupRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateNets(g, nets, res); err != nil {
		t.Fatal(err)
	}
	if res.TotalCost <= 0 {
		t.Error("no cost accumulated")
	}
}

func TestRenderPublicAPI(t *testing.T) {
	in, err := RandomInstance(12, RandomSpec{
		H: 6, V: 6, MinM: 1, MaxM: 1, MinPins: 3, MaxPins: 3, MinObstacles: 2, MaxObstacles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := PlainOARMST(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, in, tree); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty SVG")
	}
	if art := ASCIIArt(in, tree); art == "" {
		t.Error("empty ASCII art")
	}
}

func TestPublicAPIJSON(t *testing.T) {
	in, err := RandomInstance(7, RandomSpec{
		H: 6, V: 6, MinM: 1, MaxM: 1, MinPins: 3, MaxPins: 3, MinObstacles: 1, MaxObstacles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPins() != in.NumPins() {
		t.Error("JSON round trip lost pins")
	}
}
