// Package oarsmt is the public API of this repository: a multi-layer
// obstacle-avoiding rectilinear Steiner minimum tree (ML-OARSMT) router
// whose Steiner-point selector is a 3-D residual U-Net trained with
// combinatorial Monte-Carlo tree search, reproducing Chen et al.,
// "Arbitrary-size Multi-layer OARSMT RL Router Trained with Combinatorial
// Monte-Carlo Tree Search" (DAC 2024).
//
// The package re-exports the pieces a downstream user needs:
//
//   - problem modelling: Layout / Instance / Graph (Hanan grid graphs),
//   - routing: Router (the RL router), the algorithmic baselines, and the
//     plain OARMST builder,
//   - learning: training a selector with the combinatorial-MCTS pipeline
//     and saving/loading trained models,
//   - workloads: the paper's random-layout and public-benchmark
//     generators.
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the system inventory.
package oarsmt

import (
	"context"
	"io"
	"math/rand"
	"os"
	"time"

	"oarsmt/internal/baseline"
	"oarsmt/internal/core"
	"oarsmt/internal/errs"
	"oarsmt/internal/geom"
	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/mcts"
	"oarsmt/internal/models"
	"oarsmt/internal/multinet"
	"oarsmt/internal/nn"
	"oarsmt/internal/obs"
	"oarsmt/internal/render"
	"oarsmt/internal/rl"
	"oarsmt/internal/route"
	"oarsmt/internal/selector"
)

// Sentinel errors of the public API. They are the canonical identities the
// internal packages wrap, so errors.Is works on any error the module
// returns, however deeply wrapped.
var (
	// ErrTimeout reports that a call exceeded its deadline; it also
	// matches context.DeadlineExceeded under errors.Is.
	ErrTimeout = errs.ErrTimeout
	// ErrQueueFull reports serving-queue backpressure.
	ErrQueueFull = errs.ErrQueueFull
	// ErrInvalidLayout reports a layout that failed to decode or validate.
	ErrInvalidLayout = errs.ErrInvalidLayout
	// ErrNoPath reports an unreachable terminal on the routing graph.
	ErrNoPath = errs.ErrNoPath
	// ErrInvalidModel reports a selector model file that failed to decode
	// or validate (truncated, corrupt, wrong version or architecture).
	ErrInvalidModel = errs.ErrInvalidModel
	// ErrInternal reports a failure contained at a service boundary — a
	// recovered panic or an exhausted retry budget; the serving daemon
	// itself stays alive.
	ErrInternal = errs.ErrInternal
	// ErrTransient marks a retryable failure; the serving scheduler
	// retries matching errors with capped deterministic backoff.
	ErrTransient = errs.ErrTransient
	// ErrInvalidTree reports a routed tree that violates its structural
	// invariants (unspanned terminal, cycle, blocked vertex, cost
	// mismatch, overlapping nets); returned by ValidateNets.
	ErrInvalidTree = errs.ErrInvalidTree
	// ErrInvalidConfig reports an invalid or incomplete configuration
	// passed to a constructor or stage runner.
	ErrInvalidConfig = errs.ErrInvalidConfig
	// ErrClosed reports a request submitted to a service that has begun
	// draining or shut down.
	ErrClosed = errs.ErrClosed
	// ErrTooLarge reports a layout or request body above the server's
	// configured limits.
	ErrTooLarge = errs.ErrTooLarge
	// ErrUnsupportedProto reports a wire-protocol version outside the
	// server's supported range.
	ErrUnsupportedProto = errs.ErrUnsupportedProto
)

// Observability re-exports (see internal/obs): Router.Route and the other
// context-first entry points accept an Observer via WithObserver; Snapshot
// reads the process-wide metrics.
type (
	// Observer bundles a span trace and/or a metrics registry for one
	// call tree.
	Observer = obs.Observer
	// Trace is a hierarchical span tree, serialisable as JSON.
	Trace = obs.Trace
	// Metrics is a point-in-time snapshot of the metrics registry.
	Metrics = obs.Metrics
)

// NewTrace creates a span trace whose root carries the given dotted
// snake_case name.
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// Snapshot captures the process-wide metrics registry (route.*, core.*,
// mcts.*, rl.* counters and histograms).
func Snapshot() Metrics { return obs.Snapshot() }

// RouteOption configures one Router.Route call.
type RouteOption = core.Option

// WithTimeout bounds one Route call with a deadline; exceeding it returns
// an error matching ErrTimeout.
func WithTimeout(d time.Duration) RouteOption { return core.WithTimeout(d) }

// WithWorkers sets the process-wide worker-pool size before routing.
func WithWorkers(n int) RouteOption { return core.WithWorkers(n) }

// WithInferenceMode overrides the router's inference mode for one call.
func WithInferenceMode(m InferenceMode) RouteOption { return core.WithInferenceMode(m) }

// WithObserver attaches observability sinks to one Route call.
func WithObserver(o *Observer) RouteOption { return core.WithObserver(o) }

// Core problem types.
type (
	// Point is a pin location in original layout coordinates.
	Point = geom.Point
	// Rect is a rectangular obstacle in original layout coordinates.
	Rect = geom.Rect
	// Layout is a geometric ML-OARSMT problem.
	Layout = layout.Layout
	// Instance is a grid-form problem: a Hanan grid graph plus pins.
	Instance = layout.Instance
	// Graph is a 3-D Hanan grid graph.
	Graph = grid.Graph
	// VertexID indexes a grid vertex.
	VertexID = grid.VertexID
	// Tree is a routed rectilinear Steiner tree.
	Tree = route.Tree
	// RouteResult is the outcome of routing one instance.
	RouteResult = core.Result
	// Router is the RL router (selector + OARMST construction).
	Router = core.Router
	// Selector is the trained Steiner-point selector.
	Selector = selector.Selector
	// RandomSpec parameterises random layout generation.
	RandomSpec = layout.RandomSpec
	// TrainConfig parameterises combinatorial-MCTS training.
	TrainConfig = rl.Config
	// MCTSConfig parameterises one combinatorial-MCTS episode.
	MCTSConfig = mcts.Config
	// UNetConfig parameterises the selector's network architecture.
	UNetConfig = nn.UNetConfig
)

// InferenceMode selects one-shot (the paper's router) or sequential
// (baseline-style) Steiner-point proposal.
type InferenceMode = core.InferenceMode

// Inference modes.
const (
	// OneShot selects all Steiner points with a single network inference.
	OneShot = core.OneShot
	// Sequential re-runs the network after every selected point.
	Sequential = core.Sequential
)

// NewRouter returns the paper's router around a trained selector: one-shot
// inference with guarded acceptance.
func NewRouter(sel *Selector) *Router { return core.NewRouter(sel) }

// NewSelector creates an untrained selector with the given architecture
// and initialisation seed.
func NewSelector(seed int64, cfg UNetConfig) (*Selector, error) {
	return selector.NewRandom(rand.New(rand.NewSource(seed)), cfg)
}

// DefaultUNetConfig returns the compact CPU-friendly selector architecture
// used by this repository's tooling.
func DefaultUNetConfig() UNetConfig {
	cfg := nn.DefaultUNetConfig()
	cfg.InChannels = selector.NumFeatures
	return cfg
}

// Train runs `stages` stages of the combinatorial-MCTS training pipeline
// (sample generation, 16x augmentation, mixed-size same-size-batch
// fitting) on the selector in place.
func Train(sel *Selector, cfg TrainConfig, stages int) error {
	tr := rl.NewTrainer(sel, cfg)
	for i := 0; i < stages; i++ {
		if _, err := tr.RunStage(); err != nil {
			return err
		}
	}
	return nil
}

// SaveModel writes a trained selector to a file.
func SaveModel(sel *Selector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sel.Save(f)
}

// LoadModel reads a selector saved with SaveModel.
func LoadModel(path string) (*Selector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return selector.Load(f)
}

// ReadModel reads a selector from a stream.
func ReadModel(r io.Reader) (*Selector, error) { return selector.Load(r) }

// PretrainedSelector returns a private copy of the selector shipped with
// the repository (trained at CPU scale with the combinatorial-MCTS
// pipeline; see internal/models).
func PretrainedSelector() (*Selector, error) { return models.New() }

// RandomInstance generates a random routable grid-form layout.
func RandomInstance(seed int64, spec RandomSpec) (*Instance, error) {
	return layout.Random(rand.New(rand.NewSource(seed)), spec)
}

// Benchmark generates the synthetic equivalent of one of the paper's
// Table 4 public benchmarks (rt1..rt5, ind1..ind3).
func Benchmark(name string) (*Instance, error) {
	spec, ok := layout.BenchmarkByName(name)
	if !ok {
		return nil, &UnknownBenchmarkError{Name: name}
	}
	return spec.Generate()
}

// UnknownBenchmarkError reports a benchmark name outside Table 4.
type UnknownBenchmarkError struct{ Name string }

func (e *UnknownBenchmarkError) Error() string {
	return "oarsmt: unknown benchmark " + e.Name
}

// DecodeInstance reads a layout (geometric or grid form) from JSON.
func DecodeInstance(r io.Reader) (*Instance, error) { return layout.Decode(r) }

// EncodeInstance writes a grid-form instance as JSON.
func EncodeInstance(w io.Writer, in *Instance) error { return layout.EncodeInstance(w, in) }

// PlainOARMST routes an instance with no Steiner points: the spanning-tree
// baseline of the ST-to-MST metric.
func PlainOARMST(ctx context.Context, in *Instance) (*Tree, error) {
	return core.PlainOARMST(ctx, in)
}

// BaselineAlgorithm identifies one of the reproduced algorithmic routers.
type BaselineAlgorithm = baseline.Algorithm

// Algorithmic baselines of the paper's comparison (see
// internal/baseline).
const (
	Lin08 = baseline.Lin08 // spanning-graph router of [12]
	Liu14 = baseline.Liu14 // geometric-reduction router of [16]
	Lin18 = baseline.Lin18 // bounded maze routing + retracing of [14]
)

// RouteBaseline routes an instance with one of the algorithmic baselines
// and returns its tree.
func RouteBaseline(alg BaselineAlgorithm, in *Instance) (*Tree, error) {
	res, err := baseline.New(alg).Route(in)
	if err != nil {
		return nil, err
	}
	return res.Tree, nil
}

// SearchEpisode runs one combinatorial-MCTS episode on the instance and
// returns the training sample label and episode statistics; this is the
// building block of the training pipeline, exposed for experimentation.
func SearchEpisode(sel *Selector, in *Instance, cfg MCTSConfig) (*mcts.Result, error) {
	return mcts.Search(sel, in, cfg)
}

// Multi-net routing (an extension beyond the paper; see
// internal/multinet): route several nets on one layout with committed
// wires acting as obstacles and rip-up-and-reroute negotiation.
type (
	// Net is one net of a multi-net problem.
	Net = multinet.Net
	// MultiNetConfig parameterises the negotiation loop.
	MultiNetConfig = multinet.Config
	// MultiNetResult is the outcome of a multi-net run.
	MultiNetResult = multinet.Result
)

// RouteNets routes all nets on the graph with the RL router (or the plain
// OARMST when sel is nil) as the single-net engine. The context bounds the
// whole negotiation loop.
func RouteNets(ctx context.Context, g *Graph, nets []Net, sel *Selector, cfg MultiNetConfig) (*MultiNetResult, error) {
	engine := multinet.RouterFunc(func(in *Instance) (*route.Tree, error) {
		if sel == nil || in.NumPins() < 3 {
			r := route.NewRouter(in.Graph)
			r.SetContext(ctx)
			return r.OARMST(in.Pins)
		}
		res, err := core.NewRouter(sel).Route(ctx, in)
		if err != nil {
			return nil, err
		}
		return res.Tree, nil
	})
	return multinet.Route(g, nets, engine, cfg)
}

// ValidateNets checks a multi-net result against the base graph.
func ValidateNets(g *Graph, nets []Net, res *MultiNetResult) error {
	return multinet.Validate(g, nets, res)
}

// WriteSVG draws the instance and (optionally nil) routed tree as an SVG
// with one panel per routing layer.
func WriteSVG(w io.Writer, in *Instance, tree *Tree) error {
	return render.SVG(w, in, tree, render.DefaultSVGConfig())
}

// WriteSVGMulti draws several routed trees (e.g. a multi-net result) on
// one instance, one colour per tree.
func WriteSVGMulti(w io.Writer, in *Instance, trees []*Tree) error {
	return render.SVGMulti(w, in, trees, render.DefaultSVGConfig())
}

// ASCIIArt renders the instance and (optionally nil) tree as text, one
// block per layer: P pins, S Steiner points, # obstacles, + wires, * via
// endpoints.
func ASCIIArt(in *Instance, tree *Tree) string { return render.ASCII(in, tree) }
