package oarsmt

// One benchmark per evaluation table and figure of the paper, plus the
// ablation benches called out in DESIGN.md. Each benchmark iteration
// processes one layout (or one training stage), so ns/op is directly the
// per-layout (per-stage) cost; the full tables are produced by
// cmd/oarsmt-bench, which also prints the paper-formatted rows.

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"oarsmt/internal/baseline"
	"oarsmt/internal/core"
	"oarsmt/internal/experiments"
	"oarsmt/internal/layout"
	"oarsmt/internal/mcts"
	"oarsmt/internal/mctsconv"
	"oarsmt/internal/models"
	"oarsmt/internal/rl"
	"oarsmt/internal/selector"
)

var (
	benchSelOnce sync.Once
	benchSel     *selector.Selector
)

// benchSelector returns the embedded pretrained selector (shared across
// benchmarks; they run sequentially).
func benchSelector(b *testing.B) *selector.Selector {
	b.Helper()
	benchSelOnce.Do(func() {
		sel, err := models.Pretrained()
		if err != nil {
			b.Fatalf("pretrained model: %v", err)
		}
		benchSel = sel
	})
	return benchSel
}

func benchLayouts(b *testing.B, subset string, n int) []*layout.Instance {
	b.Helper()
	spec, ok := layout.SubsetByName(subset)
	if !ok {
		b.Fatalf("unknown subset %s", subset)
	}
	rng := rand.New(rand.NewSource(1))
	outs := make([]*layout.Instance, n)
	for i := range outs {
		in, err := layout.Random(rng, spec.Spec)
		if err != nil {
			b.Fatal(err)
		}
		outs[i] = in
	}
	return outs
}

// BenchmarkTable1Generate measures workload generation for Table 1's T32
// subset (one layout per iteration).
func BenchmarkTable1Generate(b *testing.B) {
	spec, _ := layout.SubsetByName("T32")
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := layout.Random(rng, spec.Spec); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCostComparison runs one [14]-vs-ours head-to-head per iteration on
// the given subset; this is the inner loop of Tables 2 and 3.
func benchCostComparison(b *testing.B, subset string) {
	sel := benchSelector(b)
	ins := benchLayouts(b, subset, 4)
	ours := core.NewRouter(sel)
	lin18 := baseline.New(baseline.Lin18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := ins[i%len(ins)]
		rb, err := lin18.Route(in)
		if err != nil {
			b.Fatal(err)
		}
		ro, err := ours.Route(context.Background(), in)
		if err != nil {
			b.Fatal(err)
		}
		_ = rb.Tree.Cost
		_ = ro.Tree.Cost
	}
}

// BenchmarkTable2CostT32 exercises the Table 2 comparison on T32 layouts.
func BenchmarkTable2CostT32(b *testing.B) { benchCostComparison(b, "T32") }

// BenchmarkTable2CostT64 exercises the Table 2 comparison on T64 layouts.
func BenchmarkTable2CostT64(b *testing.B) { benchCostComparison(b, "T64") }

// BenchmarkTable3RuntimeOursT32 isolates our router's runtime (the "total"
// column of Table 3) on T32 layouts.
func BenchmarkTable3RuntimeOursT32(b *testing.B) {
	sel := benchSelector(b)
	ins := benchLayouts(b, "T32", 4)
	ours := core.NewRouter(sel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ours.Route(context.Background(), ins[i%len(ins)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3RuntimeLin18T32 isolates [14]'s runtime (column (a) of
// Table 3) on T32 layouts.
func BenchmarkTable3RuntimeLin18T32(b *testing.B) {
	ins := benchLayouts(b, "T32", 4)
	lin18 := baseline.New(baseline.Lin18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lin18.Route(ins[i%len(ins)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10ObstacleRatio measures the obstacle-ratio bucketing pass of
// Fig 10 over a pre-evaluated subset.
func BenchmarkFig10ObstacleRatio(b *testing.B) {
	sel := benchSelector(b)
	opts := experiments.Options{Scale: experiments.ScaleSmall, Seed: 1, Selector: sel}
	evals, err := experiments.RunComparison(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig10(opts, evals, 5)
	}
}

// benchTable4 routes one Table 4 public-benchmark equivalent per iteration
// with ours and the strongest baseline.
func benchTable4(b *testing.B, name string) {
	sel := benchSelector(b)
	spec, ok := layout.BenchmarkByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	in, err := spec.Generate()
	if err != nil {
		b.Fatal(err)
	}
	ours := core.NewRouter(sel)
	lin18 := baseline.New(baseline.Lin18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lin18.Route(in); err != nil {
			b.Fatal(err)
		}
		if _, err := ours.Route(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4PublicRT1 runs the Table 4 comparison on rt1.
func BenchmarkTable4PublicRT1(b *testing.B) { benchTable4(b, "rt1") }

// BenchmarkTable4PublicInd1 runs the Table 4 comparison on ind1.
func BenchmarkTable4PublicInd1(b *testing.B) { benchTable4(b, "ind1") }

// BenchmarkFig11Training measures one stage of the Fig 11 three-way
// training comparison (combinatorial trainer arm).
func BenchmarkFig11Training(b *testing.B) {
	benchTrainingStage(b, experiments.FigTrainingDefaults(11, experiments.ScaleSmall))
}

// BenchmarkFig12Training measures one stage at the Fig 12 layout size.
func BenchmarkFig12Training(b *testing.B) {
	benchTrainingStage(b, experiments.FigTrainingDefaults(12, experiments.ScaleSmall))
}

func benchTrainingStage(b *testing.B, cfg experiments.FigTrainingConfig) {
	sel, err := selector.NewRandom(rand.New(rand.NewSource(1)),
		UNetConfig{InChannels: 7, Base: 4, Depth: 2, Kernel: 3})
	if err != nil {
		b.Fatal(err)
	}
	tr := rl.NewTrainer(sel, rl.Config{
		Sizes:            []layout.TrainingSize{cfg.Size},
		LayoutsPerSize:   cfg.LayoutsPerStage,
		MinPins:          cfg.InRangePins[0],
		MaxPins:          cfg.InRangePins[1],
		CurriculumStages: 0,
		MCTS:             mcts.Config{Iterations: cfg.MCTSIterations, UseCritic: true},
		BatchSize:        16,
		EpochsPerStage:   1,
		LR:               2e-3,
		Seed:             1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.RunStage(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSampleGeneration compares the per-episode sample
// generation cost of combinatorial vs conventional MCTS (the 3.48x claim
// of §4.2): run with -bench 'AblationSampleGeneration' and compare the two
// sub-benchmarks' ns/op.
func BenchmarkAblationSampleGeneration(b *testing.B) {
	sel := benchSelector(b)
	in, err := layout.Random(rand.New(rand.NewSource(2)), layout.RandomSpec{
		H: 10, V: 10, MinM: 2, MaxM: 2, MinPins: 5, MaxPins: 5, MinObstacles: 8, MaxObstacles: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("combinatorial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mcts.Search(sel, in, mcts.Config{Iterations: 16, UseCritic: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("conventional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mctsconv.Search(sel, in, mctsconv.Config{Iterations: 16, UseCritic: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationInferenceMode compares one-shot vs sequential selection
// (the 1.67x/3.54x inference-speedup claim of §4.2).
func BenchmarkAblationInferenceMode(b *testing.B) {
	sel := benchSelector(b)
	in, err := layout.Random(rand.New(rand.NewSource(3)), layout.RandomSpec{
		H: 16, V: 16, MinM: 4, MaxM: 4, MinPins: 8, MaxPins: 8, MinObstacles: 32, MaxObstacles: 32,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []core.InferenceMode{core.OneShot, core.Sequential} {
		r := &core.Router{Selector: sel, Mode: mode, GuardedAcceptance: false, RetracePasses: 1}
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.Route(context.Background(), in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPriorityPruning quantifies the search-tree compaction of
// the lexicographic priority (nodes expanded per episode are reported by
// the experiment harness; here we measure wall-clock per episode).
func BenchmarkAblationPriorityPruning(b *testing.B) {
	sel := benchSelector(b)
	opts := experiments.Options{Seed: 4, Selector: sel}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPriorityPruning(opts, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBoundedMaze compares the Lin18 bounded construction
// against the unbounded Liu14 construction.
func BenchmarkAblationBoundedMaze(b *testing.B) {
	ins := benchLayouts(b, "T32", 4)
	bounded := baseline.New(baseline.Lin18)
	unbounded := baseline.New(baseline.Liu14)
	b.Run("bounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bounded.Route(ins[i%len(ins)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unbounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := unbounded.Route(ins[i%len(ins)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGuardedAcceptance measures the guard's overhead (one
// extra OARMST + retrace per layout).
func BenchmarkAblationGuardedAcceptance(b *testing.B) {
	sel := benchSelector(b)
	ins := benchLayouts(b, "T32", 4)
	for _, guarded := range []bool{true, false} {
		name := "guarded"
		if !guarded {
			name = "unguarded"
		}
		r := &core.Router{Selector: sel, Mode: core.OneShot, GuardedAcceptance: guarded, RetracePasses: 1}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.Route(context.Background(), ins[i%len(ins)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
