package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"oarsmt/internal/errs"
	"oarsmt/wire"
)

func newTestClient(t *testing.T, h http.Handler, mut ...func(*Config)) *Client {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	cfg := Config{BaseURL: srv.URL}
	for _, m := range mut {
		m(&cfg)
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestNewValidatesConfig(t *testing.T) {
	for _, bad := range []Config{
		{},
		{BaseURL: "not a url"},
		{BaseURL: "/relative/only"},
		{BaseURL: "http://h:1", Retries: -1},
	} {
		if _, err := New(bad); !errors.Is(err, errs.ErrInvalidConfig) {
			t.Errorf("New(%+v) err = %v, want ErrInvalidConfig", bad, err)
		}
	}
	if _, err := New(Config{BaseURL: "http://127.0.0.1:1/"}); err != nil {
		t.Errorf("trailing slash rejected: %v", err)
	}
}

// TestSentinelRoundTrip is the error-contract acceptance test: every
// sentinel in the table — the nine pre-wire ones and the three the wire
// layer added — written by a server through wire.WriteError must come
// back out of the client still matching errors.Is.
func TestSentinelRoundTrip(t *testing.T) {
	sentinels := []struct {
		name string
		err  error
	}{
		{"timeout", errs.ErrTimeout},
		{"queue_full", errs.ErrQueueFull},
		{"invalid_layout", errs.ErrInvalidLayout},
		{"no_path", errs.ErrNoPath},
		{"invalid_model", errs.ErrInvalidModel},
		{"internal", errs.ErrInternal},
		{"transient", errs.ErrTransient},
		{"invalid_tree", errs.ErrInvalidTree},
		{"invalid_config", errs.ErrInvalidConfig},
		{"closed", errs.ErrClosed},
		{"too_large", errs.ErrTooLarge},
		{"unsupported_proto", errs.ErrUnsupportedProto},
	}
	var current atomic.Pointer[error]
	cl := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Wrapped twice to prove depth does not matter on the wire.
		wire.WriteError(w, fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", *current.Load())))
	}))
	for _, tc := range sentinels {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.err
			current.Store(&e)
			_, err := cl.RouteJSON(context.Background(), []byte(`{}`), nil)
			if !errors.Is(err, tc.err) {
				t.Errorf("round-tripped err = %v, does not match %v", err, tc.err)
			}
			// The wire must not conflate sentinels: no *other* sentinel
			// may match, except ErrTimeout's documented equivalence with
			// context.DeadlineExceeded.
			for _, other := range sentinels {
				if other.name == tc.name {
					continue
				}
				if errors.Is(err, other.err) {
					t.Errorf("%s also matches %s", tc.name, other.name)
				}
			}
		})
	}
}

// TestRetryDeterministicBackoff: retryable failures are retried on the
// doubling schedule through the injected sleep; the third attempt wins.
func TestRetryDeterministicBackoff(t *testing.T) {
	var calls atomic.Int64
	var slept []time.Duration
	cl := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			wire.WriteError(w, errs.ErrTransient)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"cost": 1}`))
	}), func(c *Config) {
		c.Retries = 3
		c.sleep = func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		}
	})
	resp, err := cl.RouteJSON(context.Background(), []byte(`{}`), nil)
	if err != nil {
		t.Fatalf("retried request failed: %v", err)
	}
	if resp.Cost != 1 {
		t.Errorf("resp = %+v", resp)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("backoff schedule %v, want %v", slept, want)
	}
}

// TestNoRetryOnNonRetryable: an invalid layout must not be retried —
// the second attempt would spend the same budget to fail the same way.
func TestNoRetryOnNonRetryable(t *testing.T) {
	var calls atomic.Int64
	cl := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		wire.WriteError(w, errs.ErrInvalidLayout)
	}), func(c *Config) { c.Retries = 5 })
	_, err := cl.RouteJSON(context.Background(), []byte(`{}`), nil)
	if !errors.Is(err, errs.ErrInvalidLayout) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("non-retryable error was retried: %d calls", calls.Load())
	}
}

// TestRetriesExhausted: the budget runs out and the transient error
// surfaces.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	cl := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		wire.WriteError(w, errs.ErrQueueFull)
	}), func(c *Config) {
		c.Retries = 2
		c.sleep = func(context.Context, time.Duration) error { return nil }
	})
	_, err := cl.RouteJSON(context.Background(), []byte(`{}`), nil)
	if !errors.Is(err, errs.ErrQueueFull) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3 (1 + 2 retries)", calls.Load())
	}
}

// TestConnectionErrorIsTransient: a refused connection surfaces as
// ErrTransient so callers' retry logic treats it uniformly.
func TestConnectionErrorIsTransient(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // the port is now dead
	cl, err := New(Config{BaseURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Healthz(context.Background()); !errors.Is(err, errs.ErrTransient) {
		t.Errorf("refused connection err = %v, want ErrTransient", err)
	}
}

// TestClientTimeout: Config.Timeout bounds a hanging call and surfaces
// as ErrTimeout.
func TestClientTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	cl := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}), func(c *Config) { c.Timeout = 30 * time.Millisecond })
	_, err := cl.RouteJSON(context.Background(), []byte(`{}`), nil)
	if !errors.Is(err, errs.ErrTimeout) {
		t.Errorf("hung call err = %v, want ErrTimeout", err)
	}
}

// TestHedgedRoute: the primary hangs, the hedge delay expires, the
// second attempt answers and is flagged Hedged.
func TestHedgedRoute(t *testing.T) {
	var calls atomic.Int64
	// The primary hangs until released; the server cannot observe the
	// client's cancellation here because the handler never drains the
	// request body, so an explicit release (run before t.Cleanup closes
	// the test server) is what unblocks it.
	release := make(chan struct{})
	defer close(release)
	cl := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"cost": 2}`))
	}), func(c *Config) { c.HedgeDelay = 20 * time.Millisecond })
	resp, err := cl.RouteJSON(context.Background(), []byte(`{}`), nil)
	if err != nil {
		t.Fatalf("hedged route failed: %v", err)
	}
	if !resp.Hedged {
		t.Error("winning response not flagged Hedged")
	}
	if resp.Cost != 2 {
		t.Errorf("resp = %+v", resp)
	}
}

// TestHedgePromotedOnFastFailure: when the primary fails immediately,
// the hedge fires at once instead of waiting out the delay.
func TestHedgePromotedOnFastFailure(t *testing.T) {
	var calls atomic.Int64
	cl := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			wire.WriteError(w, errs.ErrTransient)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"cost": 3}`))
	}), func(c *Config) { c.HedgeDelay = time.Hour }) // the timer must never be what fires the hedge
	start := time.Now()
	resp, err := cl.RouteJSON(context.Background(), []byte(`{}`), nil)
	if err != nil {
		t.Fatalf("route failed: %v", err)
	}
	if resp.Cost != 3 || !resp.Hedged {
		t.Errorf("resp = %+v, want hedged cost-3 answer", resp)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("hedge waited for the timer instead of promoting on failure")
	}
}

// TestProtoHeaderSent: every request advertises the client's protocol
// version.
func TestProtoHeaderSent(t *testing.T) {
	var got atomic.Pointer[string]
	cl := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := r.Header.Get(wire.ProtoHeader)
		got.Store(&h)
		w.Write([]byte("ok"))
	}))
	if err := cl.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if h := got.Load(); h == nil || *h != "1" {
		t.Errorf("request proto header = %v, want \"1\"", got.Load())
	}
}
