// Package client is the supported way to talk to an oarsmt serving
// process — a single worker daemon or a cluster coordinator; the two are
// indistinguishable through this API. It speaks the versioned wire
// protocol (package wire), maps error bodies back onto the sentinel
// errors re-exported by the root oarsmt package (so
// errors.Is(err, oarsmt.ErrQueueFull) holds across the network exactly
// as it does in-process), and owns the reliability mechanics every
// caller otherwise reimplements: per-call timeouts, deterministic
// retry backoff on transient failures, and optional hedged routing.
//
// Nothing else in the repository issues raw HTTP to serve endpoints;
// the coordinator, the smoke and load-generation tools, and the serving
// tests all go through this package.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"oarsmt/internal/errs"
	"oarsmt/internal/fault"
	"oarsmt/wire"
)

// maxResponseBytes bounds how much of a response body the client reads;
// a full routed tree on the largest accepted layout fits well under it.
const maxResponseBytes = 64 << 20

// Config configures a Client. The zero value of every field except
// BaseURL is usable.
type Config struct {
	// BaseURL is the server's root, e.g. "http://127.0.0.1:8080".
	// Required.
	BaseURL string

	// HTTPClient issues the requests; nil uses a private default client
	// (sharing http.DefaultClient across tenants would share its
	// connection pool limits too).
	HTTPClient *http.Client

	// Timeout bounds each call that arrives without a context deadline;
	// 0 means no client-side bound. A context deadline always wins.
	Timeout time.Duration

	// Retries is how many additional attempts a failed call gets when
	// the failure is retryable (transient faults, queue backpressure,
	// connection errors). 0 disables retries.
	Retries int

	// Backoff is the delay before the first retry, doubling each
	// attempt; 0 defaults to 50ms. The schedule is deterministic — no
	// jitter — so tests and replays see identical timing.
	Backoff time.Duration

	// HedgeDelay, when positive, arms hedged routing: if a Route call
	// has not answered within the delay, an identical second request is
	// issued and the first success wins. Hedging costs duplicated work
	// on the server, so reserve it for latency-sensitive callers; the
	// layout cache makes the duplicate nearly free when both land on
	// the same shard.
	HedgeDelay time.Duration

	// sleep is the retry/hedge clock, injectable by tests to run the
	// deterministic backoff schedule without real waiting.
	sleep func(context.Context, time.Duration) error
}

// Client is a thread-safe handle to one serving endpoint.
type Client struct {
	cfg  Config
	base string
	hc   *http.Client
}

// New validates the configuration and returns a client. No connection
// is made until the first call.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("%w: client: BaseURL is required", errs.ErrInvalidConfig)
	}
	u, err := url.Parse(cfg.BaseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("%w: client: BaseURL %q: want an absolute URL like http://host:port", errs.ErrInvalidConfig, cfg.BaseURL)
	}
	if cfg.Retries < 0 {
		return nil, fmt.Errorf("%w: client: Retries %d: want >= 0", errs.ErrInvalidConfig, cfg.Retries)
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.sleep == nil {
		cfg.sleep = ctxSleep
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{cfg: cfg, base: strings.TrimRight(u.String(), "/"), hc: hc}, nil
}

// Retryable reports whether an error is worth retrying against the same
// endpoint: transient faults (including injected ones and connection
// errors, which the client wraps as ErrTransient), queue backpressure,
// and a draining server. Timeouts and invalid inputs are not — the
// retry would spend the same budget to fail the same way.
func Retryable(err error) bool {
	return errors.Is(err, errs.ErrTransient) ||
		errors.Is(err, errs.ErrQueueFull) ||
		errors.Is(err, errs.ErrClosed)
}

// ctxSleep waits d or until the context is done, whichever is first.
func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do runs one JSON call with the client's timeout and retry policy.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("%w: client: encoding %s request: %v", errs.ErrInternal, path, err)
		}
	}
	if c.cfg.Timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.cfg.Timeout)
			defer cancel()
		}
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = c.once(ctx, method, path, body, out)
		if err == nil || attempt >= c.cfg.Retries || !Retryable(err) {
			return err
		}
		if c.cfg.sleep(ctx, c.cfg.Backoff<<attempt) != nil {
			return err
		}
	}
}

// once issues a single request and maps the response or failure onto
// the sentinel contract.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("%w: client: building %s request: %v", errs.ErrInternal, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	wire.SetProto(req.Header)
	// client.transport simulates a network partition: every attempt fails
	// before touching the wire while the fault is armed. Injected errors
	// classify as transient, so they exercise the real retry path.
	if ferr := fault.Inject("client.transport"); ferr != nil {
		return fmt.Errorf("client: transport: %w", ferr)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// The transport reports context expiry as a URL error; surface
		// the deadline itself so it classifies as a timeout, and wrap
		// everything else (refused connections, resets) as transient.
		if ctx.Err() != nil {
			return errs.Classify(ctx.Err())
		}
		return fmt.Errorf("%w: client: %v", errs.ErrTransient, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		if ctx.Err() != nil {
			return errs.Classify(ctx.Err())
		}
		return fmt.Errorf("%w: client: reading %s response: %v", errs.ErrTransient, path, err)
	}
	if resp.StatusCode/100 != 2 {
		return wire.AsError(resp.StatusCode, b)
	}
	if out != nil {
		if err := json.Unmarshal(b, out); err != nil {
			return fmt.Errorf("%w: client: decoding %s response: %v", errs.ErrInternal, path, err)
		}
	}
	return nil
}

// get runs a GET returning the raw body (for text endpoints).
func (c *Client) getText(ctx context.Context, path string) (string, error) {
	var cancel context.CancelFunc = func() {}
	if c.cfg.Timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			ctx, cancel = context.WithTimeout(ctx, c.cfg.Timeout)
		}
	}
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return "", fmt.Errorf("%w: client: building %s request: %v", errs.ErrInternal, path, err)
	}
	wire.SetProto(req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return "", errs.Classify(ctx.Err())
		}
		return "", fmt.Errorf("%w: client: %v", errs.ErrTransient, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return "", fmt.Errorf("%w: client: reading %s response: %v", errs.ErrTransient, path, err)
	}
	if resp.StatusCode/100 != 2 {
		return "", wire.AsError(resp.StatusCode, b)
	}
	return string(b), nil
}

// Healthz reports whether the server is accepting work: nil while
// serving, an error wrapping ErrClosed while draining, a transport
// error when unreachable.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, wire.PathHealthz, nil, nil)
}

// Stats fetches a worker's counter snapshot.
func (c *Client) Stats(ctx context.Context) (*wire.Stats, error) {
	var st wire.Stats
	if err := c.do(ctx, http.MethodGet, wire.PathStats, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// ClusterStats fetches a coordinator's snapshot. Calling it on a plain
// worker decodes the overlapping fields and leaves Workers empty.
func (c *Client) ClusterStats(ctx context.Context) (*wire.ClusterStats, error) {
	var st wire.ClusterStats
	if err := c.do(ctx, http.MethodGet, wire.PathStats, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	return c.getText(ctx, wire.PathMetrics)
}
