package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"oarsmt/internal/errs"
	"oarsmt/internal/layout"
	"oarsmt/wire"
)

// RouteOptions are the per-request knobs of a Route call; the zero
// value asks for the server defaults and a summary-only response.
type RouteOptions struct {
	// Timeout caps the server-side routing deadline (the request's
	// timeoutMillis field); 0 leaves the server default in force. This
	// is distinct from Config.Timeout, which bounds the whole HTTP
	// exchange client-side.
	Timeout time.Duration
	// Edges asks for the full routed tree in the response.
	Edges bool
}

// Route routes one layout and returns the typed response. The layout is
// encoded in the canonical JSON grid form; callers holding pre-encoded
// layout JSON should use RouteJSON instead.
func (c *Client) Route(ctx context.Context, in *layout.Instance, opts *RouteOptions) (*wire.RouteResponse, error) {
	var buf bytes.Buffer
	if err := layout.EncodeInstance(&buf, in); err != nil {
		return nil, err
	}
	return c.RouteJSON(ctx, buf.Bytes(), opts)
}

// RouteJSON routes a layout already encoded in the layout JSON format.
// It applies the client's retry policy and, when Config.HedgeDelay is
// set, hedges the request with a second identical attempt.
func (c *Client) RouteJSON(ctx context.Context, layoutJSON []byte, opts *RouteOptions) (*wire.RouteResponse, error) {
	if opts == nil {
		opts = &RouteOptions{}
	}
	if !json.Valid(layoutJSON) {
		// Catch it before the envelope marshal garbles the diagnosis;
		// the server would answer ErrInvalidLayout for the same bytes.
		return nil, fmt.Errorf("%w: layout is not valid JSON", errs.ErrInvalidLayout)
	}
	req := wire.RouteRequest{
		Layout:        json.RawMessage(layoutJSON),
		TimeoutMillis: opts.Timeout.Milliseconds(),
		Edges:         opts.Edges,
	}
	if opts.Timeout > 0 && req.TimeoutMillis == 0 {
		// A sub-millisecond timeout must not silently become "server
		// default"; round it up to the smallest wire-expressible value.
		req.TimeoutMillis = 1
	}
	if c.cfg.HedgeDelay <= 0 {
		return c.routeOnce(ctx, &req)
	}
	return c.routeHedged(ctx, &req)
}

// routeOnce is the unhedged path: one logical call through the retry
// policy.
func (c *Client) routeOnce(ctx context.Context, req *wire.RouteRequest) (*wire.RouteResponse, error) {
	var resp wire.RouteResponse
	if err := c.do(ctx, http.MethodPost, wire.PathRoute, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// routeHedged races two identical attempts separated by HedgeDelay: the
// primary starts immediately; if it has not answered when the delay
// expires, a secondary fires and the first success wins. The loser is
// cancelled. Routing is idempotent and cached by canonical layout hash,
// so the duplicate is safe and usually a cache hit.
func (c *Client) routeHedged(ctx context.Context, req *wire.RouteRequest) (*wire.RouteResponse, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		resp   *wire.RouteResponse
		err    error
		hedged bool
	}
	// Buffered so the losing attempt can deposit its result and exit
	// even after the winner has returned.
	results := make(chan result, 2)
	attempt := func(ctx context.Context, hedged bool) {
		resp, err := c.routeOnce(ctx, req)
		if resp != nil && hedged {
			resp.Hedged = true
		}
		results <- result{resp, err, hedged}
	}
	go attempt(hctx, false)

	var firstErr error
	launched, outstanding := 1, 1
	for outstanding > 0 {
		if launched == 1 {
			// Primary still alone: wait for it or for the hedge timer.
			t := time.NewTimer(c.cfg.HedgeDelay)
			select {
			case r := <-results:
				t.Stop()
				outstanding--
				if r.err == nil {
					return r.resp, nil
				}
				firstErr = r.err
				// The primary failed fast (e.g. connection refused);
				// promote the hedge into an immediate second attempt
				// rather than waiting out the timer.
				go attempt(hctx, true)
				launched, outstanding = 2, 1
			case <-t.C:
				go attempt(hctx, true)
				launched, outstanding = 2, 2
			case <-hctx.Done():
				t.Stop()
				return nil, errs.Classify(hctx.Err())
			}
			continue
		}
		r := <-results
		outstanding--
		if r.err == nil {
			return r.resp, nil
		}
		if firstErr == nil {
			firstErr = r.err
		}
	}
	return nil, fmt.Errorf("hedged route: %w", firstErr)
}
