package client

// Legacy wire compatibility: the unversioned paths and query parameters
// predate the typed protocol and survive as deprecated aliases. These
// tests speak raw HTTP on purpose — they impersonate pre-protocol
// clients — and are the one sanctioned home for it: all other in-repo
// callers go through the client package.

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"oarsmt/internal/errs"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
	"oarsmt/internal/serve"
	"oarsmt/wire"
)

const compatLayout = `{"name":"t","grid":{"h":3,"v":3,"m":2,"viaCost":2,` +
	`"dx":[1,1],"dy":[1,1],"pins":[0,8]}}`

func newServeBackend(t *testing.T) *httptest.Server {
	t.Helper()
	sel, err := selector.NewRandom(rand.New(rand.NewSource(1)),
		nn.UNetConfig{InChannels: selector.NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.NewService(serve.Config{Selector: sel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestLegacyRouteBareBody: the pre-protocol convention — bare layout
// body, options as query parameters — still works, and the response
// carries the deprecation header naming the /v1 replacement.
func TestLegacyRouteBareBody(t *testing.T) {
	srv := newServeBackend(t)

	res, err := http.Post(srv.URL+"/route?edges=1", "application/json", strings.NewReader(compatLayout))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("POST /route = %d, want 200", res.StatusCode)
	}
	if dep := res.Header.Get(wire.DeprecationHeader); dep != wire.PathRoute {
		t.Errorf("deprecation header = %q, want %q", dep, wire.PathRoute)
	}
	var resp wire.RouteResponse
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cost <= 0 || len(resp.Edges) != resp.NumEdges {
		t.Errorf("legacy response degenerate: %+v", resp)
	}
}

// TestLegacyQueryParamsOnV1: a half-migrated client posting the typed
// envelope but still passing ?timeout=/?edges= query parameters gets
// them honoured when the envelope leaves the fields unset.
func TestLegacyQueryParamsOnV1(t *testing.T) {
	srv := newServeBackend(t)
	body := `{"layout":` + compatLayout + `}`

	res, err := http.Post(srv.URL+wire.PathRoute+"?edges=1&timeout=30s", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("POST %s = %d, want 200", wire.PathRoute, res.StatusCode)
	}
	var resp wire.RouteResponse
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Edges) != resp.NumEdges {
		t.Errorf("legacy edges param ignored on /v1: %+v", resp)
	}
}

// TestLegacyTimeoutParamRejected: a malformed legacy ?timeout= is a 400
// on both generations of the route path.
func TestLegacyTimeoutParamRejected(t *testing.T) {
	srv := newServeBackend(t)
	for _, path := range []string{"/route", wire.PathRoute} {
		body := compatLayout
		if path == wire.PathRoute {
			body = `{"layout":` + compatLayout + `}`
		}
		res, err := http.Post(srv.URL+path+"?timeout=banana", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s?timeout=banana = %d, want 400", path, res.StatusCode)
		}
	}
}

// TestLegacyStatusCodes: the HTTP statuses pre-protocol clients switch
// on are unchanged — 405 on a GET of the route path, 429 + Retry-After
// on queue overflow is covered by the serve tests, and the error body
// still carries the legacy "error" field.
func TestLegacyStatusCodes(t *testing.T) {
	srv := newServeBackend(t)

	res, err := http.Get(srv.URL + "/route")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /route = %d, want 405", res.StatusCode)
	}

	bad, err := http.Post(srv.URL+"/route", "application/json", strings.NewReader(`{"grid":`))
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed layout = %d, want 400", bad.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.NewDecoder(bad.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error == "" {
		t.Error("error body lost the legacy \"error\" field")
	}
	if e.Code != "invalid_layout" {
		t.Errorf("error code = %q, want invalid_layout", e.Code)
	}
}

// TestLegacyAliasesForGETs: /healthz, /stats and /metrics still answer
// and carry the deprecation header; their /v1 twins answer without it.
func TestLegacyAliasesForGETs(t *testing.T) {
	srv := newServeBackend(t)
	pairs := []struct{ legacy, v1 string }{
		{"/healthz", wire.PathHealthz},
		{"/stats", wire.PathStats},
		{"/metrics", wire.PathMetrics},
	}
	for _, p := range pairs {
		res, err := http.Get(srv.URL + p.legacy)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", p.legacy, res.StatusCode)
		}
		if dep := res.Header.Get(wire.DeprecationHeader); dep != p.v1 {
			t.Errorf("GET %s deprecation header = %q, want %q", p.legacy, dep, p.v1)
		}
		vres, err := http.Get(srv.URL + p.v1)
		if err != nil {
			t.Fatal(err)
		}
		vres.Body.Close()
		if vres.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", p.v1, vres.StatusCode)
		}
		if dep := vres.Header.Get(wire.DeprecationHeader); dep != "" {
			t.Errorf("GET %s carries a deprecation header %q", p.v1, dep)
		}
		if proto := vres.Header.Get(wire.ProtoHeader); proto == "" {
			t.Errorf("GET %s response missing the proto header", p.v1)
		}
	}
}

// TestProtoNegotiation: a request advertising an unsupported protocol
// version is refused with the unsupported_proto code; the client-side
// sentinel matches.
func TestProtoNegotiation(t *testing.T) {
	srv := newServeBackend(t)
	body := `{"layout":` + compatLayout + `}`
	req, err := http.NewRequest(http.MethodPost, srv.URL+wire.PathRoute, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(wire.ProtoHeader, "99")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("proto 99 = %d, want 400", res.StatusCode)
	}
	var e struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(res.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "unsupported_proto" {
		t.Errorf("code = %q, want unsupported_proto", e.Code)
	}
	if s := wire.Sentinel(e.Code); !errors.Is(s, errs.ErrUnsupportedProto) {
		t.Errorf("sentinel for %q = %v", e.Code, s)
	}
}
