package client

// Partition behaviour: the client.transport fault point fails attempts
// before they touch the wire, standing in for a severed network. These
// tests pin that the retry and hedge machinery treats an injected
// partition exactly like a real one.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"oarsmt/internal/errs"
	"oarsmt/internal/fault"
	"oarsmt/wire"
)

// TestTransportFaultRetried: a two-attempt partition is ridden out by
// the retry policy on the deterministic backoff schedule; the server
// sees only the one attempt that got through.
func TestTransportFaultRetried(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	var calls atomic.Int64
	var slept []time.Duration
	cl := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"cost": 3}`))
	}), func(c *Config) {
		c.Retries = 3
		c.sleep = func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		}
	})

	fault.Set("client.transport", fault.Options{Mode: fault.Error, Times: 2})
	resp, err := cl.RouteJSON(context.Background(), []byte(`{}`), nil)
	if err != nil {
		t.Fatalf("partitioned route failed through retries: %v", err)
	}
	if resp.Cost != 3 {
		t.Errorf("resp = %+v", resp)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls, want 1 (two attempts died at the transport)", calls.Load())
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("backoff schedule %v, want %v", slept, want)
	}
}

// TestTransportFaultExhaustsRetries: a total partition surfaces as a
// transient, injected error once the retry budget is spent — and the
// server never hears about any of it.
func TestTransportFaultExhaustsRetries(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	var calls atomic.Int64
	cl := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
	}), func(c *Config) {
		c.Retries = 2
		c.sleep = func(context.Context, time.Duration) error { return nil }
	})

	fault.Set("client.transport", fault.Options{Mode: fault.Error})
	_, err := cl.RouteJSON(context.Background(), []byte(`{}`), nil)
	if !errors.Is(err, errs.ErrTransient) {
		t.Fatalf("total partition = %v, want ErrTransient", err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Errorf("injected partition lost its ErrInjected mark: %v", err)
	}
	if calls.Load() != 0 {
		t.Errorf("server saw %d calls through a total partition", calls.Load())
	}
}

// TestTransportFaultPromotesHedge: with hedging armed, a primary that
// dies at the transport promotes the hedge immediately — the winning
// response is marked Hedged and the hedge timer is never waited out.
func TestTransportFaultPromotesHedge(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	var calls atomic.Int64
	cl := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"cost": 5}`))
	}), func(c *Config) {
		c.HedgeDelay = time.Hour // only a promoted hedge can answer in time
	})

	fault.Set("client.transport", fault.Options{Mode: fault.Error, Times: 1})
	start := time.Now()
	resp, err := cl.RouteJSON(context.Background(), []byte(`{}`), nil)
	if err != nil {
		t.Fatalf("hedged route with partitioned primary: %v", err)
	}
	if !resp.Hedged || resp.Cost != 5 {
		t.Errorf("resp = %+v, want a hedged cost-5 answer", resp)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls, want 1", calls.Load())
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("promoted hedge took %v — the hedge timer was waited out", elapsed)
	}
}

// TestProtoDowngradeWindow: the server accepts every version in
// [MinVersion, Version] — the downgrade window that lets an old worker
// talk to a new coordinator — plus the unversioned pre-protocol form,
// and rejects versions outside it with the unsupported_proto contract.
func TestProtoDowngradeWindow(t *testing.T) {
	srv := newServeBackend(t)
	body := func() *strings.Reader { return strings.NewReader(`{"layout":` + compatLayout + `}`) }
	send := func(t *testing.T, proto string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+wire.PathRoute, body())
		if err != nil {
			t.Fatal(err)
		}
		if proto != "" {
			req.Header.Set(wire.ProtoHeader, proto)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { res.Body.Close() })
		return res
	}

	for v := wire.MinVersion; v <= wire.Version; v++ {
		if res := send(t, strconv.Itoa(v)); res.StatusCode != http.StatusOK {
			t.Errorf("version %d inside the window = %d, want 200", v, res.StatusCode)
		}
	}
	if res := send(t, ""); res.StatusCode != http.StatusOK {
		t.Errorf("unversioned request = %d, want 200", res.StatusCode)
	}

	for _, bad := range []string{strconv.Itoa(wire.MinVersion - 1), strconv.Itoa(wire.Version + 1), "bogus"} {
		res := send(t, bad)
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("version %q = %d, want 400", bad, res.StatusCode)
			continue
		}
		var e struct {
			Code string `json:"code"`
		}
		if err := json.NewDecoder(res.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		if e.Code != "unsupported_proto" {
			t.Errorf("version %q code = %q, want unsupported_proto", bad, e.Code)
		}
		if s := wire.Sentinel(e.Code); !errors.Is(s, errs.ErrUnsupportedProto) {
			t.Errorf("sentinel for %q = %v, want ErrUnsupportedProto", e.Code, s)
		}
	}
}
