package client

import (
	"context"
	"net/http"

	"oarsmt/wire"
)

// Cluster-plane calls, issued by workers against a coordinator. They go
// through the same timeout/retry policy as the data plane: a register
// or renewal that hits a transient coordinator failure retries with the
// deterministic backoff schedule.

// Register announces a worker to the coordinator and returns the
// granted lease. Re-registering a known ID renews its lease and updates
// its address.
func (c *Client) Register(ctx context.Context, req wire.RegisterRequest) (*wire.RegisterResponse, error) {
	var resp wire.RegisterResponse
	if err := c.do(ctx, http.MethodPost, wire.PathRegister, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RenewLease extends a worker's registration before it expires.
func (c *Client) RenewLease(ctx context.Context, id string) (*wire.LeaseResponse, error) {
	var resp wire.LeaseResponse
	if err := c.do(ctx, http.MethodPost, wire.PathLease, wire.LeaseRequest{ID: id}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Replicate installs a finished route into a worker's cache tiers; the
// coordinator calls it against the next ring replica after a fresh
// answer. The worker re-validates before installing.
func (c *Client) Replicate(ctx context.Context, req wire.ReplicateRequest) (*wire.ReplicateResponse, error) {
	var resp wire.ReplicateResponse
	if err := c.do(ctx, http.MethodPost, wire.PathReplicate, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Drain tells the coordinator to stop routing new work to a worker that
// is shutting down; in-flight requests finish on the worker's own drain
// path.
func (c *Client) Drain(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, wire.PathDrain, wire.DrainRequest{ID: id}, nil)
}
