package oarsmt_test

import (
	"context"
	"fmt"
	"log"

	"oarsmt"
)

// ExampleNewRouter routes a deterministic layout with the plain OARMST
// fallback (nil selector is allowed for 2-pin nets) and validates it.
func ExampleNewRouter() {
	in, err := oarsmt.RandomInstance(2, oarsmt.RandomSpec{
		H: 8, V: 8, MinM: 1, MaxM: 1,
		MinPins: 2, MaxPins: 2,
		MinObstacles: 0, MaxObstacles: 0,
		MinEdgeCost: 1, MaxEdgeCost: 1,
		MinViaCost: 1, MaxViaCost: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	r := oarsmt.NewRouter(nil)
	res, err := r.Route(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("edges:", len(res.Tree.Edges) > 0)
	fmt.Println("valid:", res.Tree.Validate(in.Graph, in.Pins) == nil)
	// Output:
	// edges: true
	// valid: true
}

// ExamplePlainOARMST shows the no-Steiner-point spanning tree on a tiny
// hand-made geometric layout.
func ExamplePlainOARMST() {
	l := &oarsmt.Layout{
		Name:    "tiny",
		Layers:  1,
		ViaCost: 1,
		Pins: []oarsmt.Point{
			{X: 0, Y: 0, Layer: 0},
			{X: 4, Y: 0, Layer: 0},
			{X: 2, Y: 3, Layer: 0},
		},
	}
	in, err := l.Instance()
	if err != nil {
		log.Fatal(err)
	}
	tree, err := oarsmt.PlainOARMST(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hanan grid %dx%d, tree cost %.0f\n", in.Graph.H, in.Graph.V, tree.Cost)
	// Output:
	// Hanan grid 3x2, tree cost 7
}

// ExampleRouteBaseline compares the three reproduced algorithmic routers
// on one deterministic layout.
func ExampleRouteBaseline() {
	in, err := oarsmt.RandomInstance(3, oarsmt.RandomSpec{
		H: 10, V: 10, MinM: 2, MaxM: 2,
		MinPins: 5, MaxPins: 5,
		MinObstacles: 6, MaxObstacles: 6,
		MinEdgeCost: 1, MaxEdgeCost: 1,
		MinViaCost: 2, MaxViaCost: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, alg := range []oarsmt.BaselineAlgorithm{oarsmt.Lin08, oarsmt.Liu14, oarsmt.Lin18} {
		tree, err := oarsmt.RouteBaseline(alg, in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v spans pins: %v\n", alg, tree.Validate(in.Graph, in.Pins) == nil)
	}
	// Output:
	// Lin08[12] spans pins: true
	// Liu14[16] spans pins: true
	// Lin18[14] spans pins: true
}

// ExampleASCIIArt renders a routed layout as text.
func ExampleASCIIArt() {
	l := &oarsmt.Layout{
		Layers:  1,
		ViaCost: 1,
		Pins: []oarsmt.Point{
			{X: 0, Y: 0, Layer: 0},
			{X: 2, Y: 0, Layer: 0},
			{X: 1, Y: 1, Layer: 0},
		},
	}
	in, err := l.Instance()
	if err != nil {
		log.Fatal(err)
	}
	tree, err := oarsmt.PlainOARMST(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(oarsmt.ASCIIArt(in, tree))
	// Output:
	// layer 0:
	// +P.
	// P+P
}
