module oarsmt

go 1.22
