package oarsmt

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"oarsmt/internal/serve"
)

// TestSentinelWrapRoundTrips pins the wrapping contract: every public
// sentinel survives fmt.Errorf("%w") wrapping under errors.Is, and the
// sentinels are mutually distinct.
func TestSentinelWrapRoundTrips(t *testing.T) {
	sentinels := map[string]error{
		"ErrTimeout":       ErrTimeout,
		"ErrQueueFull":     ErrQueueFull,
		"ErrInvalidLayout": ErrInvalidLayout,
		"ErrNoPath":        ErrNoPath,
	}
	for name, sentinel := range sentinels {
		wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", sentinel))
		if !errors.Is(wrapped, sentinel) {
			t.Errorf("double-wrapped %s does not match itself", name)
		}
		for other, otherErr := range sentinels {
			if other != name && errors.Is(wrapped, otherErr) {
				t.Errorf("wrapped %s also matches %s", name, other)
			}
		}
	}
	// The serving layer's backpressure error is the same identity.
	if !errors.Is(serve.ErrQueueFull, ErrQueueFull) {
		t.Error("serve.ErrQueueFull does not match oarsmt.ErrQueueFull")
	}
}

// TestErrTimeoutThroughPublicAPI routes with an already-expired deadline
// and checks the returned error matches both the module sentinel and the
// stdlib's context.DeadlineExceeded.
func TestErrTimeoutThroughPublicAPI(t *testing.T) {
	sel, err := NewSelector(1, UNetConfig{InChannels: 7, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	in, err := RandomInstance(2, RandomSpec{
		H: 8, V: 8, MinM: 2, MaxM: 2, MinPins: 4, MaxPins: 4, MinObstacles: 4, MaxObstacles: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	_, err = NewRouter(sel).Route(ctx, in)
	if err == nil {
		t.Fatal("route with an expired deadline succeeded")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("error %v does not match ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not match context.DeadlineExceeded", err)
	}
}

// TestErrInvalidLayoutThroughPublicAPI decodes malformed layout JSON and
// checks every failure mode matches ErrInvalidLayout.
func TestErrInvalidLayoutThroughPublicAPI(t *testing.T) {
	for _, body := range []string{
		"{not json",
		`{"grid": {"h": -3, "v": 4, "m": 1}}`,
		`{}`,
	} {
		_, err := DecodeInstance(strings.NewReader(body))
		if err == nil {
			t.Fatalf("decoding %q succeeded", body)
		}
		if !errors.Is(err, ErrInvalidLayout) {
			t.Errorf("decode error %v for %q does not match ErrInvalidLayout", err, body)
		}
	}
}

// TestErrNoPathThroughPublicAPI routes a layout whose second pin is walled
// in by obstacles on a single layer, so no rectilinear path exists, and
// checks the unreachable error matches ErrNoPath.
func TestErrNoPathThroughPublicAPI(t *testing.T) {
	l := &Layout{
		Name:    "walled-in",
		Layers:  1,
		ViaCost: 1,
		Pins: []Point{
			{X: 1, Y: 1, Layer: 0},
			{X: 5, Y: 5, Layer: 0},
		},
		// Four overlapping rectangles forming a closed ring around (5,5).
		Obstacles: []Rect{
			{X1: 3, Y1: 3, X2: 4, Y2: 7, Layer: 0},
			{X1: 6, Y1: 3, X2: 7, Y2: 7, Layer: 0},
			{X1: 3, Y1: 3, X2: 7, Y2: 4, Layer: 0},
			{X1: 3, Y1: 6, X2: 7, Y2: 7, Layer: 0},
		},
	}
	in, err := l.Instance()
	if err != nil {
		t.Fatal(err)
	}
	_, err = PlainOARMST(context.Background(), in)
	if err == nil {
		t.Fatal("routing a walled-in pin succeeded")
	}
	if !errors.Is(err, ErrNoPath) {
		t.Errorf("unreachable error %v does not match ErrNoPath", err)
	}
}
