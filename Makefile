# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short bench bench-gate bench-all bench-fault bench-store check check-fast crash-test chaos-test chaos-test-short lint lint-cold fuzz vet experiments examples train train-resume serve serve-smoke store-smoke cluster-smoke clean

all: build test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

# The project-specific determinism & concurrency analyzers (internal/lint):
# detmap, nowallclock, seededrand, rawgo, floatreduce, ctxhygiene,
# obsnames, goroleak, spanend, plus the interprocedural dettaint and
# errwrap. Exits nonzero on any finding; results are served from the
# .lintcache content-hash cache when the tree is unchanged. See DESIGN.md
# "Static analysis".
lint:
	go run ./cmd/oarsmt-lint -timing ./...

# Same suite with the result cache bypassed: the full typecheck-and-analyze
# cost, for timing comparisons and for validating the cache itself.
lint-cold:
	go run ./cmd/oarsmt-lint -cache=off -timing ./...

# Static checks (vet + oarsmt-lint) plus the race detector over every
# surface the worker pool reaches, plus the kernel speedup regression
# gate. The second tier runs -short so check stays minutes-scale.
check: vet lint
	go test -race ./internal/parallel ./internal/tensor ./internal/mcts ./internal/serve ./internal/store ./internal/obs ./internal/errs ./internal/ckpt ./internal/fault ./internal/cluster ./client ./wire
	go test -race -short ./internal/route ./internal/rl ./internal/nn ./internal/selector
	$(MAKE) chaos-test-short
	$(MAKE) bench-gate

# Static analysis only (no race detector): fast enough for a pre-commit
# hook.
check-fast: vet lint

# Deterministic chaos suite. First the unit layer under the race detector
# (breakers, coordinator state recovery, replication, agent backoff,
# transport partitions), then the multi-process harness: a race-built
# daemon is tortured through six scripted scenarios — worker SIGKILL
# under load, coordinator crash + ckpt restore, agent partition, slow
# shard hedging, store-segment corruption, and a flapping worker
# tripping its breaker. Fault schedules ship to the children via
# OARSMT_FAULTS, so every run is deterministic. Writes BENCH_chaos.json.
chaos-test:
	go test -race -count=1 ./internal/cluster \
		-run 'Breaker|Admission|CrashRecovery|State|Replication|Backoff'
	go test -race -count=1 ./internal/serve -run 'Replicate|Install'
	go test -race -count=1 ./client -run 'TransportFault|ProtoDowngrade'
	go test -race -count=1 ./internal/fault -run 'FormatSpec'
	go build -race -o bin/oarsmt-serve-race ./cmd/oarsmt-serve
	go build -o bin/oarsmt-chaos ./cmd/oarsmt-chaos
	bin/oarsmt-chaos -bin bin/oarsmt-serve-race -json BENCH_chaos.json

# Short chaos subset run by `make check`: one end-to-end scenario (the
# worker kill with replica fan-out) against the race-built daemon.
chaos-test-short:
	go build -race -o bin/oarsmt-serve-race ./cmd/oarsmt-serve
	go build -o bin/oarsmt-chaos ./cmd/oarsmt-chaos
	bin/oarsmt-chaos -bin bin/oarsmt-serve-race -run worker-kill

# Fault-tolerance suite under the race detector: checkpoint frame
# corruption/torn-write recovery, kill-and-resume bit-identity, injected
# selector/route/enqueue faults, serve degradation and contained panics.
crash-test:
	go test -race -count=1 ./internal/ckpt ./internal/fault \
		-run .
	go test -race -count=1 ./internal/rl -run 'Checkpoint|Resume|DetSource'
	go test -race -count=1 ./internal/core ./internal/serve \
		-run 'Fault|Degrad|Retry|Panic|Enqueue'

# Core kernel/search benchmarks, run twice: once serial (OARSMT_WORKERS=0)
# and once on the default worker pool, then folded into BENCH_tensor.json
# with before/after ns/op, speedups, and per-benchmark speedup floors.
# -count=3 lets benchjson keep the minimum of each measurement; recording
# fails if any speedup regressed below the previously recorded floor.
BENCH_PKGS = ./internal/tensor ./internal/mcts ./internal/route

bench:
	OARSMT_WORKERS=0 go test -run='^$$' -bench=. -benchmem -count=3 $(BENCH_PKGS) | tee bench_serial.txt
	go test -run='^$$' -bench=. -benchmem -count=3 $(BENCH_PKGS) | tee bench_parallel.txt
	go run ./cmd/oarsmt-benchjson -serial bench_serial.txt -parallel bench_parallel.txt -o BENCH_tensor.json
	go run ./cmd/oarsmt-bench -exp obs -obs-out BENCH_obs.json
	$(MAKE) bench-store

# Route-store latency/throughput report: cold vs warm route latency (serve)
# plus segment write, compaction and warm-open throughput (store), folded
# into BENCH_store.json through the same serial/parallel benchjson flow.
STORE_BENCH_PKGS = ./internal/store ./internal/serve

bench-store:
	OARSMT_WORKERS=0 go test -run='^$$' -bench='^BenchmarkStore' -benchmem -count=3 $(STORE_BENCH_PKGS) | tee bench_store_serial.txt
	go test -run='^$$' -bench='^BenchmarkStore' -benchmem -count=3 $(STORE_BENCH_PKGS) | tee bench_store_parallel.txt
	go run ./cmd/oarsmt-benchjson -serial bench_store_serial.txt -parallel bench_store_parallel.txt -o BENCH_store.json

# Speedup regression gate (run by `make check`): re-measure the kernel
# suite quickly and fail if any benchmark's speedup fell below the floor
# recorded in BENCH_tensor.json. Never rewrites the report.
bench-gate:
	OARSMT_WORKERS=0 go test -run='^$$' -bench=. -benchmem -benchtime=0.3s -count=2 $(BENCH_PKGS) | tee bench_serial.txt
	go test -run='^$$' -bench=. -benchmem -benchtime=0.3s -count=2 $(BENCH_PKGS) | tee bench_parallel.txt
	go run ./cmd/oarsmt-benchjson -gate -serial bench_serial.txt -parallel bench_parallel.txt -o BENCH_tensor.json

# Fault-tolerance cost guard: checkpoint save/load throughput and the
# degraded-path route latency vs the healthy baseline, folded into
# BENCH_fault.json. The "serial" column is the healthy/workerless run,
# "parallel" the default pool, same flow as `make bench`.
FAULT_BENCH_PKGS = ./internal/ckpt ./internal/core

bench-fault:
	OARSMT_WORKERS=0 go test -run='^$$' -bench='Checkpoint|Route' -benchmem $(FAULT_BENCH_PKGS) | tee bench_fault_serial.txt
	go test -run='^$$' -bench='Checkpoint|Route' -benchmem $(FAULT_BENCH_PKGS) | tee bench_fault_parallel.txt
	go run ./cmd/oarsmt-benchjson -serial bench_fault_serial.txt -parallel bench_fault_parallel.txt -o BENCH_fault.json

# Full benchmark sweep (micro-benchmarks + one bench per paper table/figure).
bench-all:
	go test -bench=. -benchmem ./...

fuzz:
	go test -fuzz=FuzzDecode -fuzztime=30s ./internal/layout/
	go test -fuzz=FuzzTextFmt -fuzztime=30s ./internal/layout/
	go test -fuzz=FuzzSegmentDecode -fuzztime=30s ./internal/store/
	go test -fuzz=FuzzAllowAnnotation -fuzztime=30s ./internal/lint/

# Regenerate every paper table and figure at CPU scale.
experiments:
	go run ./cmd/oarsmt-bench -exp all -scale small

# Run the routing daemon on the embedded model.
serve:
	go run ./cmd/oarsmt-serve

# End-to-end serving smoke test: build the daemon, start it on a free
# port, check /healthz, route a layout (twice; the repeat must hit the
# cache), then SIGTERM it and verify the graceful drain exits 0.
serve-smoke:
	go build -o bin/oarsmt-serve ./cmd/oarsmt-serve
	go run ./cmd/oarsmt-smoke -bin bin/oarsmt-serve

# End-to-end cluster smoke test: coordinator + 3 registered workers;
# verifies shard affinity (the repeat of a layout is its shard's cache
# hit), spread across workers, a SIGTERM'd worker draining with zero
# dropped requests while requests are in flight, and writes the
# throughput/latency curve from oarsmt-loadgen to BENCH_cluster.json.
cluster-smoke:
	go build -o bin/oarsmt-serve ./cmd/oarsmt-serve
	go build -o bin/oarsmt-loadgen ./cmd/oarsmt-loadgen
	go run ./cmd/oarsmt-smoke -bin bin/oarsmt-serve -cluster 3 \
		-loadgen bin/oarsmt-loadgen -bench BENCH_cluster.json

# End-to-end warm-restart smoke test: route through a store-backed daemon,
# SIGKILL it, restart it over the same -store-dir, and verify the layout is
# served from disk bit-identically with zero selector inferences.
store-smoke:
	go build -o bin/oarsmt-serve ./cmd/oarsmt-serve
	rm -rf bin/store-smoke-dir
	go run ./cmd/oarsmt-smoke -bin bin/oarsmt-serve -store-dir bin/store-smoke-dir
	rm -rf bin/store-smoke-dir

examples:
	go run ./examples/quickstart
	go run ./examples/multilayer
	go run ./examples/preferred
	go run ./examples/multinet

# Retrain the embedded selector. Crash-safe: a checkpoint lands in
# train-ckpts/ after every stage, and `make train-resume` continues a
# killed run bit-identically.
TRAIN_FLAGS = -o internal/models/selector.gob \
	-stages 16 -hv 8,12,16 -layers 2,4 -layouts 6 -alpha 1024 \
	-metrics train-metrics.csv -ckpt-dir train-ckpts

train:
	go run ./cmd/oarsmt-train $(TRAIN_FLAGS)

train-resume:
	go run ./cmd/oarsmt-train $(TRAIN_FLAGS) -resume

clean:
	rm -f test_output.txt bench_output.txt train-metrics.csv \
		bench_serial.txt bench_parallel.txt BENCH_tensor.json BENCH_obs.json \
		bench_fault_serial.txt bench_fault_parallel.txt BENCH_fault.json \
		bench_store_serial.txt bench_store_parallel.txt BENCH_store.json
	rm -rf train-ckpts bin/store-smoke-dir .lintcache
