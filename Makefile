# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short bench fuzz vet experiments examples train clean

all: build test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

# Full benchmark sweep (micro-benchmarks + one bench per paper table/figure).
bench:
	go test -bench=. -benchmem ./...

fuzz:
	go test -fuzz=FuzzDecode -fuzztime=30s ./internal/layout/

# Regenerate every paper table and figure at CPU scale.
experiments:
	go run ./cmd/oarsmt-bench -exp all -scale small

examples:
	go run ./examples/quickstart
	go run ./examples/multilayer
	go run ./examples/preferred
	go run ./examples/multinet

# Retrain the embedded selector (checkpointed per stage; interruptible).
train:
	go run ./cmd/oarsmt-train -o internal/models/selector.gob \
		-stages 16 -hv 8,12,16 -layers 2,4 -layouts 6 -alpha 1024 \
		-metrics train-metrics.csv

clean:
	rm -f test_output.txt bench_output.txt train-metrics.csv
